// Correlated large-scale shadowing, keyed by the *physical radio pair*.
//
// This is the physical mechanism behind the paper's Observation 3 (and
// therefore behind Voiceprint itself): shadowing is a property of the
// propagation path between two radios, evolving smoothly as the vehicles
// move. Every identity transmitted from the SAME radio rides the SAME
// realised shadowing process toward a given receiver — so Sybil series
// share their shape — while two distinct radios, even 3 m apart, ride
// independent processes (the paper measured exactly this with its
// side-by-side normal node 2, Figs. 6–7).
//
// The process is Ornstein–Uhlenbeck in the dB domain (the standard
// Gudmundson-style exponentially correlated shadowing): unit-variance
// state X with E[X(t+Δ)X(t)] = exp(−Δ/τ); the caller scales by the σ the
// propagation model prescribes at the current distance. A small i.i.d.
// per-packet term models measurement noise and residual fast fading.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/ids.h"
#include "common/rng.h"

namespace vp::radio {

class CorrelatedShadowingField {
 public:
  // `coherence_time_s` is the e-folding time of the shadowing
  // autocorrelation; `noise_db` the i.i.d. per-packet deviation.
  CorrelatedShadowingField(double coherence_time_s, double noise_db, Rng rng);

  // Shadowing + per-packet noise (dB) for a frame from radio `tx` to radio
  // `rx` at `time_s`, where the model's local deviation is `sigma_db`.
  // Calls for a given pair must be in non-decreasing time order.
  double sample(NodeId tx, NodeId rx, double sigma_db, double time_s);

  // The correlated component only (no per-packet noise); exposed for tests.
  double shadow_only(NodeId tx, NodeId rx, double sigma_db, double time_s);

  std::size_t tracked_pairs() const { return states_.size(); }

 private:
  struct State {
    double time_s = 0.0;
    double x = 0.0;  // unit-variance OU state
    bool initialized = false;
  };

  double advance(State& state, double time_s);

  double coherence_time_s_;
  double noise_db_;
  Rng rng_;
  std::unordered_map<std::uint64_t, State> states_;
};

}  // namespace vp::radio
