#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "radio/propagation.h"

namespace vp::radio {

FreeSpaceModel::FreeSpaceModel(double frequency_hz, LinkBudget budget)
    : wavelength_m_(units::kSpeedOfLightMps / frequency_hz), budget_(budget) {
  VP_REQUIRE(frequency_hz > 0.0);
}

double FreeSpaceModel::mean_rx_power_dbm(double tx_power_dbm,
                                         double distance_m,
                                         double /*time_s*/) const {
  VP_REQUIRE(distance_m > 0.0);
  // Friis: Pr = Pt + Gt + Gr + 20·log10(λ / (4πd)).
  const double fspl_db =
      20.0 * std::log10(4.0 * units::kPi * distance_m / wavelength_m_);
  return tx_power_dbm + budget_.total_gain_db() - fspl_db;
}

double FreeSpaceModel::sample_rx_power_dbm(double tx_power_dbm,
                                           double distance_m, double time_s,
                                           Rng& /*rng*/) const {
  return mean_rx_power_dbm(tx_power_dbm, distance_m, time_s);
}

double FreeSpaceModel::distance_for_mean_power(double tx_power_dbm,
                                               double rx_power_dbm,
                                               double /*time_s*/) const {
  // Invert Friis for d.
  const double fspl_db = tx_power_dbm + budget_.total_gain_db() - rx_power_dbm;
  return wavelength_m_ / (4.0 * units::kPi) * std::pow(10.0, fspl_db / 20.0);
}

}  // namespace vp::radio
