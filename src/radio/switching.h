// Time-varying propagation: cycles through a list of dual-slope parameter
// sets every `change_period_s` seconds. This reproduces the paper's
// Fig. 11b setup, where NS-2's model parameters are modified periodically
// (Table V: model change period 30 s) to show that Voiceprint is immune to
// environment drift while the predefined-model baseline is not.
#pragma once

#include <vector>

#include "radio/dual_slope.h"

namespace vp::radio {

class SwitchingDualSlopeModel final : public PropagationModel {
 public:
  // Requires at least one parameter set and change_period_s > 0.
  SwitchingDualSlopeModel(double frequency_hz,
                          std::vector<DualSlopeParams> params_cycle,
                          double change_period_s, LinkBudget budget = {});

  // Builds a cycle that perturbs `base` with progressively different
  // exponents and deviations — the "different dynamic environments" of the
  // paper's simulation. `steps` distinct environments are generated.
  static SwitchingDualSlopeModel perturbed_cycle(double frequency_hz,
                                                 const DualSlopeParams& base,
                                                 std::size_t steps,
                                                 double change_period_s,
                                                 std::uint64_t seed,
                                                 LinkBudget budget = {});

  double mean_rx_power_dbm(double tx_power_dbm, double distance_m,
                           double time_s) const override;
  double sample_rx_power_dbm(double tx_power_dbm, double distance_m,
                             double time_s, Rng& rng) const override;
  double distance_for_mean_power(double tx_power_dbm, double rx_power_dbm,
                                 double time_s) const override;
  double shadowing_sigma_db(double distance_m, double time_s) const override;
  std::string_view name() const override { return "switching-dual-slope"; }

  // The model active at the given simulation time.
  const DualSlopeModel& active_model(double time_s) const;
  std::size_t cycle_length() const { return models_.size(); }
  double change_period_s() const { return change_period_s_; }

 private:
  std::vector<DualSlopeModel> models_;
  double change_period_s_;
};

}  // namespace vp::radio
