#include "radio/fading.h"

#include <cmath>

#include "common/error.h"

namespace vp::radio {

namespace {
std::uint64_t pair_key(NodeId tx, NodeId rx) {
  return (static_cast<std::uint64_t>(tx) << 32) | rx;
}
}  // namespace

CorrelatedShadowingField::CorrelatedShadowingField(double coherence_time_s,
                                                   double noise_db, Rng rng)
    : coherence_time_s_(coherence_time_s), noise_db_(noise_db), rng_(rng) {
  VP_REQUIRE(coherence_time_s > 0.0);
  VP_REQUIRE(noise_db >= 0.0);
}

double CorrelatedShadowingField::advance(State& state, double time_s) {
  if (!state.initialized) {
    state.x = rng_.normal(0.0, 1.0);
    state.time_s = time_s;
    state.initialized = true;
    return state.x;
  }
  VP_REQUIRE(time_s >= state.time_s);
  const double dt = time_s - state.time_s;
  if (dt > 0.0) {
    const double rho = std::exp(-dt / coherence_time_s_);
    state.x = rho * state.x +
              std::sqrt(std::max(0.0, 1.0 - rho * rho)) * rng_.normal(0.0, 1.0);
    state.time_s = time_s;
  }
  return state.x;
}

double CorrelatedShadowingField::shadow_only(NodeId tx, NodeId rx,
                                             double sigma_db, double time_s) {
  VP_REQUIRE(sigma_db >= 0.0);
  State& state = states_[pair_key(tx, rx)];
  return sigma_db * advance(state, time_s);
}

double CorrelatedShadowingField::sample(NodeId tx, NodeId rx, double sigma_db,
                                        double time_s) {
  return shadow_only(tx, rx, sigma_db, time_s) + rng_.normal(0.0, noise_db_);
}

}  // namespace vp::radio
