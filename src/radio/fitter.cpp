#include "radio/fitter.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/least_squares.h"

namespace vp::radio {

DualSlopeFitter::DualSlopeFitter(double frequency_hz, double tx_power_dbm,
                                 double reference_distance_m,
                                 LinkBudget budget)
    : frequency_hz_(frequency_hz),
      tx_power_dbm_(tx_power_dbm),
      reference_distance_m_(reference_distance_m),
      budget_(budget) {
  VP_REQUIRE(frequency_hz > 0.0);
  VP_REQUIRE(reference_distance_m > 0.0);
}

DualSlopeFit DualSlopeFitter::fit(std::span<const RssiSample> samples,
                                  double dc_min, double dc_max,
                                  double dc_step) const {
  VP_REQUIRE(samples.size() >= 8);
  VP_REQUIRE(dc_min > reference_distance_m_);
  VP_REQUIRE(dc_max > dc_min && dc_step > 0.0);

  const FreeSpaceModel free_space(frequency_hz_, budget_);
  const double p_d0 =
      free_space.mean_rx_power_dbm(tx_power_dbm_, reference_distance_m_, 0.0);

  DualSlopeFit best;
  double best_sse = std::numeric_limits<double>::infinity();
  bool found = false;

  for (double dc = dc_min; dc <= dc_max; dc += dc_step) {
    // Segment the samples at the candidate breakpoint.
    std::vector<double> x1, y1, x2, y2;
    for (const RssiSample& s : samples) {
      VP_REQUIRE(s.distance_m > 0.0);
      const double d = std::max(s.distance_m, reference_distance_m_);
      if (d <= dc) {
        x1.push_back(std::log10(d / reference_distance_m_));
        y1.push_back(s.rssi_dbm);
      } else {
        x2.push_back(std::log10(d / dc));
        y2.push_back(s.rssi_dbm);
      }
    }
    if (x1.size() < 4 || x2.size() < 4) continue;

    // Near segment: y = P(d0) − 10γ1·x1 → slope through the fixed intercept.
    const double s1 = slope_through(x1, y1, p_d0);
    const double gamma1 = -s1 / 10.0;
    if (gamma1 <= 0.0) continue;

    // Far segment: y = [P(d0) − 10γ1·log10(dc/d0)] − 10γ2·x2.
    const double p_dc =
        p_d0 - 10.0 * gamma1 * std::log10(dc / reference_distance_m_);
    const double s2 = slope_through(x2, y2, p_dc);
    const double gamma2 = -s2 / 10.0;
    if (gamma2 <= 0.0) continue;

    double sse1 = 0.0, sse2 = 0.0;
    for (std::size_t i = 0; i < x1.size(); ++i) {
      const double r = y1[i] - (p_d0 + s1 * x1[i]);
      sse1 += r * r;
    }
    for (std::size_t i = 0; i < x2.size(); ++i) {
      const double r = y2[i] - (p_dc + s2 * x2[i]);
      sse2 += r * r;
    }
    const double sse = sse1 + sse2;
    if (sse < best_sse) {
      best_sse = sse;
      best.params.reference_distance_m = reference_distance_m_;
      best.params.critical_distance_m = dc;
      best.params.gamma1 = gamma1;
      best.params.gamma2 = gamma2;
      best.params.sigma1_db = std::sqrt(sse1 / static_cast<double>(x1.size()));
      best.params.sigma2_db = std::sqrt(sse2 / static_cast<double>(x2.size()));
      best.sse = sse;
      best.n_near = x1.size();
      best.n_far = x2.size();
      found = true;
    }
  }

  if (!found) {
    throw InvalidArgument(
        "dual-slope fit: no breakpoint candidate had at least 4 samples on "
        "both sides");
  }
  return best;
}

}  // namespace vp::radio
