// Receiver front-end: decides whether a frame's power is decodable and
// turns the analog power into the RSSI the host records. The IWCU OBU4.2
// (Table II) reports integer dBm with an RX sensitivity of −95 dBm; the
// paper's far-node traces visibly pin at that floor.
#pragma once

#include <optional>

#include "common/units.h"

namespace vp::radio {

struct ReceiverConfig {
  double sensitivity_dbm = units::kRxSensitivityDbm;  // below this: no decode
  double quantization_db = 1.0;  // RSSI reporting step (0 = no quantisation)
  // SINR (dB) a frame needs over the sum of interferers to be captured.
  double capture_threshold_db = 10.0;
};

class Receiver {
 public:
  explicit Receiver(ReceiverConfig config = {});

  // RSSI the hardware reports for a decodable frame, or nullopt if the
  // power is below sensitivity. The reported value is quantised and floored
  // at the sensitivity (hardware never reports below its own floor).
  std::optional<double> measure(double rx_power_dbm) const;

  // Whether a frame at `rx_power_dbm` survives concurrent interference
  // totalling `interference_mw` (linear milliwatts; 0 = clean channel).
  bool captures(double rx_power_dbm, double interference_mw) const;

  const ReceiverConfig& config() const { return config_; }

 private:
  ReceiverConfig config_;
};

}  // namespace vp::radio
