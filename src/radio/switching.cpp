#include "radio/switching.h"

#include <cmath>

#include "common/error.h"

namespace vp::radio {

SwitchingDualSlopeModel::SwitchingDualSlopeModel(
    double frequency_hz, std::vector<DualSlopeParams> params_cycle,
    double change_period_s, LinkBudget budget)
    : change_period_s_(change_period_s) {
  VP_REQUIRE(!params_cycle.empty());
  VP_REQUIRE(change_period_s > 0.0);
  models_.reserve(params_cycle.size());
  for (const DualSlopeParams& p : params_cycle) {
    models_.emplace_back(frequency_hz, p, budget);
  }
}

SwitchingDualSlopeModel SwitchingDualSlopeModel::perturbed_cycle(
    double frequency_hz, const DualSlopeParams& base, std::size_t steps,
    double change_period_s, std::uint64_t seed, LinkBudget budget) {
  VP_REQUIRE(steps > 0);
  Rng rng = Rng(seed).fork("model-cycle");
  std::vector<DualSlopeParams> cycle;
  cycle.reserve(steps);
  cycle.push_back(base);
  for (std::size_t i = 1; i < steps; ++i) {
    DualSlopeParams p = base;
    // Stay within the envelope of the paper's three fitted environments
    // (Table IV): γ1 ∈ [1.66, 2.56], γ2 ∈ [5.53, 6.34], σ ∈ [2.8, 5.2],
    // dc ∈ [102, 218].
    p.gamma1 = rng.uniform(1.66, 2.56);
    p.gamma2 = rng.uniform(5.53, 6.34);
    p.sigma1_db = rng.uniform(2.8, 3.9);
    p.sigma2_db = rng.uniform(3.2, 5.2);
    p.critical_distance_m = rng.uniform(102.0, 218.0);
    cycle.push_back(p);
  }
  return SwitchingDualSlopeModel(frequency_hz, std::move(cycle),
                                 change_period_s, budget);
}

const DualSlopeModel& SwitchingDualSlopeModel::active_model(
    double time_s) const {
  const double t = std::max(time_s, 0.0);
  const auto slot = static_cast<std::size_t>(t / change_period_s_);
  return models_[slot % models_.size()];
}

double SwitchingDualSlopeModel::mean_rx_power_dbm(double tx_power_dbm,
                                                  double distance_m,
                                                  double time_s) const {
  return active_model(time_s).mean_rx_power_dbm(tx_power_dbm, distance_m,
                                                time_s);
}

double SwitchingDualSlopeModel::sample_rx_power_dbm(double tx_power_dbm,
                                                    double distance_m,
                                                    double time_s,
                                                    Rng& rng) const {
  return active_model(time_s).sample_rx_power_dbm(tx_power_dbm, distance_m,
                                                  time_s, rng);
}

double SwitchingDualSlopeModel::shadowing_sigma_db(double distance_m,
                                                   double time_s) const {
  return active_model(time_s).shadowing_sigma_db(distance_m, time_s);
}

double SwitchingDualSlopeModel::distance_for_mean_power(double tx_power_dbm,
                                                        double rx_power_dbm,
                                                        double time_s) const {
  return active_model(time_s).distance_for_mean_power(tx_power_dbm,
                                                      rx_power_dbm, time_s);
}

}  // namespace vp::radio
