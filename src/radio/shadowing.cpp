#include <cmath>

#include "common/error.h"
#include "radio/propagation.h"

namespace vp::radio {

ShadowingModel::ShadowingModel(double frequency_hz,
                               double reference_distance_m,
                               double path_loss_exponent, double sigma_db,
                               LinkBudget budget)
    : free_space_(frequency_hz, budget),
      reference_distance_m_(reference_distance_m),
      exponent_(path_loss_exponent),
      sigma_db_(sigma_db) {
  VP_REQUIRE(reference_distance_m > 0.0);
  VP_REQUIRE(path_loss_exponent > 0.0);
  VP_REQUIRE(sigma_db >= 0.0);
}

double ShadowingModel::mean_rx_power_dbm(double tx_power_dbm,
                                         double distance_m,
                                         double time_s) const {
  VP_REQUIRE(distance_m > 0.0);
  const double p_ref =
      free_space_.mean_rx_power_dbm(tx_power_dbm, reference_distance_m_, time_s);
  return p_ref - 10.0 * exponent_ * std::log10(distance_m / reference_distance_m_);
}

double ShadowingModel::sample_rx_power_dbm(double tx_power_dbm,
                                           double distance_m, double time_s,
                                           Rng& rng) const {
  return mean_rx_power_dbm(tx_power_dbm, distance_m, time_s) +
         rng.normal(0.0, sigma_db_);
}

double ShadowingModel::shadowing_sigma_db(double /*distance_m*/,
                                          double /*time_s*/) const {
  return sigma_db_;
}

double ShadowingModel::distance_for_mean_power(double tx_power_dbm,
                                               double rx_power_dbm,
                                               double time_s) const {
  const double p_ref = free_space_.mean_rx_power_dbm(
      tx_power_dbm, reference_distance_m_, time_s);
  return reference_distance_m_ *
         std::pow(10.0, (p_ref - rx_power_dbm) / (10.0 * exponent_));
}

}  // namespace vp::radio
