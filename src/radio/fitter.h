// Least-squares fitting of the dual-slope model (Eq. 1) to RSSI-vs-distance
// measurements — the regression the paper runs on its Scenario-2 data to
// produce Table IV. Given samples and a known TX power, the fitter searches
// the breakpoint distance dc and solves the two slopes γ1, γ2 by
// constrained least squares in the log-distance domain, then reports the
// per-segment residual deviations σ1, σ2.
#pragma once

#include <span>

#include "radio/dual_slope.h"

namespace vp::radio {

struct RssiSample {
  double distance_m = 0.0;
  double rssi_dbm = 0.0;
};

struct DualSlopeFit {
  DualSlopeParams params;
  double sse = 0.0;       // total squared error at the chosen breakpoint
  std::size_t n_near = 0;  // samples at d <= dc
  std::size_t n_far = 0;   // samples at d > dc
};

class DualSlopeFitter {
 public:
  // `tx_power_dbm` is the (known) transmit power of the probe sender;
  // `budget` its antenna gains — together they pin P(d0) via free space.
  DualSlopeFitter(double frequency_hz, double tx_power_dbm,
                  double reference_distance_m = 1.0, LinkBudget budget = {});

  // Fits γ1, γ2, dc, σ1, σ2. The breakpoint is searched over
  // [dc_min, dc_max] with the given step. Requires at least 4 samples on
  // each side of every candidate breakpoint actually evaluated; candidates
  // without enough support are skipped. Throws InvalidArgument if no
  // candidate is feasible.
  DualSlopeFit fit(std::span<const RssiSample> samples, double dc_min = 50.0,
                   double dc_max = 400.0, double dc_step = 2.0) const;

 private:
  double frequency_hz_;
  double tx_power_dbm_;
  double reference_distance_m_;
  LinkBudget budget_;
};

}  // namespace vp::radio
