// The empirical dual-slope piecewise-linear path-loss model of Eq. 1
// (Cheng et al. [22]) — the model the paper's own measurements are fitted
// to (Table IV) and the model our simulator uses as ground truth.
#pragma once

#include <string>
#include <string_view>

#include "radio/propagation.h"

namespace vp::radio {

struct DualSlopeParams {
  double reference_distance_m = 1.0;  // d0
  double critical_distance_m = 200.0;  // dc (breakpoint)
  double gamma1 = 2.0;  // path-loss exponent before the breakpoint
  double gamma2 = 4.0;  // path-loss exponent after the breakpoint
  double sigma1_db = 3.0;  // shadowing deviation before the breakpoint
  double sigma2_db = 3.0;  // shadowing deviation after the breakpoint

  // Table IV fits from the paper's own field measurements.
  static DualSlopeParams campus();
  static DualSlopeParams rural();
  static DualSlopeParams urban();
  // Not in Table IV (the paper fitted three areas); an LOS-dominated
  // motorway setting between campus and rural, used by the highway leg of
  // the synthetic field test.
  static DualSlopeParams highway();
};

class DualSlopeModel final : public PropagationModel {
 public:
  DualSlopeModel(double frequency_hz, DualSlopeParams params,
                 LinkBudget budget = {});

  double mean_rx_power_dbm(double tx_power_dbm, double distance_m,
                           double time_s) const override;
  double sample_rx_power_dbm(double tx_power_dbm, double distance_m,
                             double time_s, Rng& rng) const override;
  double distance_for_mean_power(double tx_power_dbm, double rx_power_dbm,
                                 double time_s) const override;
  double shadowing_sigma_db(double distance_m, double time_s) const override;
  std::string_view name() const override { return "dual-slope"; }

  const DualSlopeParams& params() const { return params_; }

 private:
  FreeSpaceModel free_space_;
  DualSlopeParams params_;
};

}  // namespace vp::radio
