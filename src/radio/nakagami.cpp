#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "radio/propagation.h"

namespace vp::radio {

NakagamiModel::NakagamiModel(double frequency_hz, double reference_distance_m,
                             double path_loss_exponent, double m_shape,
                             LinkBudget budget)
    : mean_model_(frequency_hz, reference_distance_m, path_loss_exponent,
                  /*sigma_db=*/0.0, budget),
      m_shape_(m_shape) {
  VP_REQUIRE(m_shape >= 0.5);
}

double NakagamiModel::mean_rx_power_dbm(double tx_power_dbm, double distance_m,
                                        double time_s) const {
  return mean_model_.mean_rx_power_dbm(tx_power_dbm, distance_m, time_s);
}

double NakagamiModel::sample_rx_power_dbm(double tx_power_dbm,
                                          double distance_m, double time_s,
                                          Rng& rng) const {
  // Nakagami-m amplitude fading ⇔ the received *power* is Gamma(m, Ω/m)
  // with Ω the mean linear power. m = 1 is Rayleigh fading.
  const double mean_dbm =
      mean_model_.mean_rx_power_dbm(tx_power_dbm, distance_m, time_s);
  const double omega_mw = units::dbm_to_mw(mean_dbm);
  const double power_mw = rng.gamma(m_shape_, omega_mw / m_shape_);
  // Guard against log(0) from an extreme deep fade.
  return units::mw_to_dbm(std::max(power_mw, 1e-300));
}

double NakagamiModel::distance_for_mean_power(double tx_power_dbm,
                                              double rx_power_dbm,
                                              double time_s) const {
  return mean_model_.distance_for_mean_power(tx_power_dbm, rx_power_dbm,
                                             time_s);
}

}  // namespace vp::radio
