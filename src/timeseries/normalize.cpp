#include "timeseries/normalize.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace vp::ts {

namespace {
void z_score_impl(std::span<const double> xs, double scale,
                  std::vector<double>& out) {
  VP_REQUIRE(!xs.empty());
  RunningStats stats;
  for (double x : xs) stats.add(x);
  const double mu = stats.mean();
  const double sigma =
      stats.count() > 1 ? std::sqrt(stats.population_variance()) : 0.0;
  out.resize(xs.size());
  // Negated comparison so a NaN sigma (garbage input with validation
  // disabled) also takes the defined all-zeros branch instead of
  // propagating NaN into every sample.
  if (!(sigma > 0.0)) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  const double denom = scale * sigma;
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - mu) / denom;
}
}  // namespace

std::vector<double> z_score_enhanced(std::span<const double> xs) {
  std::vector<double> out;
  z_score_impl(xs, 3.0, out);
  return out;
}

void z_score_enhanced(std::span<const double> xs, std::vector<double>& out) {
  z_score_impl(xs, 3.0, out);
}

std::vector<double> z_score(std::span<const double> xs) {
  std::vector<double> out;
  z_score_impl(xs, 1.0, out);
  return out;
}

void min_max_normalize(std::span<double> xs) {
  if (xs.empty()) return;
  const auto [lo_it, hi_it] = std::minmax_element(xs.begin(), xs.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  // Negated comparison: a zero range (all pairwise distances equal) AND
  // a NaN extremum both map to the defined all-zeros output.
  if (!(hi > lo)) {
    std::fill(xs.begin(), xs.end(), 0.0);
    return;
  }
  const double range = hi - lo;
  for (double& x : xs) x = (x - lo) / range;
}

std::vector<double> min_max_normalized(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  min_max_normalize(out);
  return out;
}

}  // namespace vp::ts
