// A time-stamped scalar series. RSSI traces recorded from the control
// channel are stored as Series: sample times are packet reception times, so
// packet loss produces irregular spacing and unequal lengths — exactly the
// situation DTW (rather than point-to-point Euclidean distance) handles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vp::ts {

class Series {
 public:
  Series() = default;

  // Builds a series from parallel time/value vectors. Times must be
  // non-decreasing.
  Series(std::vector<double> times, std::vector<double> values);

  // Builds a uniformly sampled series starting at t0 with the given period.
  static Series uniform(double t0, double period, std::vector<double> values);

  // Appends a sample; time must be >= the last sample's time.
  void add(double time, double value);

  // Pre-allocates storage for `n` samples (window cuts know their size).
  void reserve(std::size_t n) {
    times_.reserve(n);
    values_.reserve(n);
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  std::span<const double> values() const { return values_; }
  std::span<const double> times() const { return times_; }

  double value(std::size_t i) const;
  double time(std::size_t i) const;

  // Sub-series with sample times in [t_begin, t_end).
  Series slice_time(double t_begin, double t_end) const;

  // Last `n` samples (all of them if n >= size()).
  Series tail(std::size_t n) const;

  // Centered moving average with the given odd window (window=1 is a copy).
  Series moving_average(std::size_t window) const;

  // Piecewise-linear resampling onto `n` uniformly spaced points across the
  // series' time span. Requires size() >= 2 and n >= 2.
  Series resample(std::size_t n) const;

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace vp::ts
