#include "timeseries/fast_dtw.h"

#include <algorithm>
#include <vector>

#include "common/error.h"

namespace vp::ts {

std::vector<double> coarsen_by_two(std::span<const double> x) {
  std::vector<double> out;
  coarsen_by_two(x, out);
  return out;
}

void coarsen_by_two(std::span<const double> x, std::vector<double>& out) {
  VP_REQUIRE(!x.empty());
  out.clear();
  out.reserve((x.size() + 1) / 2);
  std::size_t i = 0;
  for (; i + 1 < x.size(); i += 2) out.push_back(0.5 * (x[i] + x[i + 1]));
  if (i < x.size()) out.push_back(x[i]);
}

SearchWindow expand_window(std::span<const WarpStep> coarse_path,
                           std::size_t fine_n, std::size_t fine_m,
                           std::size_t radius) {
  DtwWorkspace workspace;
  return expand_window(coarse_path, fine_n, fine_m, radius, workspace);
}

const SearchWindow& expand_window(std::span<const WarpStep> coarse_path,
                                  std::size_t fine_n, std::size_t fine_m,
                                  std::size_t radius,
                                  DtwWorkspace& workspace) {
  VP_REQUIRE(!coarse_path.empty());
  // First merge the projected path into per-row bands (the pre-expansion
  // coverage), then grow every band by `radius` in both directions. This
  // produces exactly SearchWindow::expand's result without an intermediate
  // window allocation.
  std::vector<std::size_t>& proj_lo = workspace.proj_lo;
  std::vector<std::size_t>& proj_hi = workspace.proj_hi;
  std::vector<unsigned char>& proj_set = workspace.proj_set;
  proj_lo.assign(fine_n, 0);
  proj_hi.assign(fine_n, 0);
  proj_set.assign(fine_n, 0);
  auto cover = [&](std::size_t r, std::size_t c0, std::size_t c1) {
    if (!proj_set[r]) {
      proj_lo[r] = c0;
      proj_hi[r] = c1;
      proj_set[r] = 1;
    } else {
      proj_lo[r] = std::min(proj_lo[r], c0);
      proj_hi[r] = std::max(proj_hi[r], c1);
    }
  };
  for (const WarpStep& step : coarse_path) {
    // Each coarse cell (i,j) covers fine rows {2i, 2i+1} × cols {2j, 2j+1}.
    const std::size_t r0 = std::min(2 * step.i, fine_n - 1);
    const std::size_t r1 = std::min(2 * step.i + 1, fine_n - 1);
    const std::size_t c0 = std::min(2 * step.j, fine_m - 1);
    const std::size_t c1 = std::min(2 * step.j + 1, fine_m - 1);
    cover(r0, c0, c1);
    cover(r1, c0, c1);
  }

  SearchWindow& window = workspace.window_a;
  window.reset(fine_n, fine_m);
  for (std::size_t i = 0; i < fine_n; ++i) {
    if (!proj_set[i]) continue;
    const std::size_t r0 = i >= radius ? i - radius : 0;
    const std::size_t r1 = std::min(i + radius, fine_n - 1);
    const std::size_t c0 = proj_lo[i] >= radius ? proj_lo[i] - radius : 0;
    const std::size_t c1 = std::min(proj_hi[i] + radius, fine_m - 1);
    for (std::size_t r = r0; r <= r1; ++r) window.include_range(r, c0, c1);
  }
  // The projection of a valid coarse path always covers the corners; the
  // radius expansion can only widen that.
  window.include(0, 0);
  window.include(fine_n - 1, fine_m - 1);
  return window;
}

namespace {

// constrain_to_band writing into `out` (reset in place, no allocation once
// capacity exists).
void constrain_to_band_into(const SearchWindow& window, std::size_t band,
                            SearchWindow& out) {
  const std::size_t n = window.rows();
  const std::size_t m = window.cols();
  out.reset(n, m);
  auto diagonal = [&](std::size_t i) -> std::size_t {
    if (n == 1) return m - 1;
    return static_cast<std::size_t>(
        (static_cast<double>(i) * static_cast<double>(m - 1)) /
            static_cast<double>(n - 1) +
        0.5);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = diagonal(i);
    const std::size_t blo = c >= band ? c - band : 0;
    const std::size_t bhi = std::min(c + band, m - 1);
    if (!window.row_empty(i)) {
      const std::size_t plo = std::max(window.lo(i), blo);
      const std::size_t phi = std::min(window.hi(i), bhi);
      if (plo <= phi) out.include_range(i, plo, phi);
    }
    // Diagonal staircase from this row's centre to the next row's centre
    // keeps the constrained window monotonically connected.
    const std::size_t c_next = diagonal(std::min(i + 1, n - 1));
    out.include_range(i, std::min(c, c_next), std::max(c, c_next));
  }
}

}  // namespace

SearchWindow constrain_to_band(const SearchWindow& window, std::size_t band) {
  SearchWindow out(window.rows(), window.cols());
  constrain_to_band_into(window, band, out);
  return out;
}

void fast_dtw(std::span<const double> x, std::span<const double> y,
              const FastDtwOptions& options, DtwWorkspace& workspace,
              DtwResult& out) {
  VP_REQUIRE(!x.empty() && !y.empty());
  // Below this size a full DTW is cheaper than recursing.
  const std::size_t min_size = options.radius + 2;

  // The recursive formulation ("coarsen, solve, project, refine") is run
  // iteratively here: first build the coarsening pyramid into the
  // workspace, then solve the coarsest level, then refine back up. Level 0
  // is the input itself; pyramid[k-1] holds the series coarsened k times.
  std::size_t levels = 0;
  std::span<const double> cx = x;
  std::span<const double> cy = y;
  while (cx.size() > min_size && cy.size() > min_size) {
    if (workspace.pyramid_x.size() <= levels) {
      workspace.pyramid_x.emplace_back();
      workspace.pyramid_y.emplace_back();
    }
    coarsen_by_two(cx, workspace.pyramid_x[levels]);
    coarsen_by_two(cy, workspace.pyramid_y[levels]);
    cx = workspace.pyramid_x[levels];
    cy = workspace.pyramid_y[levels];
    ++levels;
  }

  // The global Sakoe–Chiba half-width at each level: halved per coarsening
  // step with a floor of one cell (as the recursion passes max(band/2, 1)
  // downward).
  auto band_at = [&](std::size_t level) -> std::size_t {
    if (level == 0) return options.band;
    return std::max<std::size_t>(options.band >> level, 1);
  };

  // Solve the coarsest level exactly.
  if (options.band == 0) {
    dtw(cx, cy, options.cost, workspace, out);
  } else {
    workspace.window_a.reset(cx.size(), cy.size());
    for (std::size_t i = 0; i < cx.size(); ++i) {
      workspace.window_a.include_range(i, 0, cy.size() - 1);
    }
    constrain_to_band_into(workspace.window_a,
                           std::max<std::size_t>(band_at(levels), 1),
                           workspace.window_b);
    dtw_windowed(cx, cy, workspace.window_b, options.cost, workspace, out);
  }

  // Refine: project each level's path onto the next finer level, expand by
  // the radius, optionally re-apply the band, and solve inside the window.
  for (std::size_t level = levels; level-- > 0;) {
    const std::span<const double> fx =
        level == 0 ? x : std::span<const double>(workspace.pyramid_x[level - 1]);
    const std::span<const double> fy =
        level == 0 ? y : std::span<const double>(workspace.pyramid_y[level - 1]);
    workspace.coarse_path.assign(out.path.begin(), out.path.end());
    const SearchWindow& expanded = expand_window(
        workspace.coarse_path, fx.size(), fy.size(), options.radius,
        workspace);
    const SearchWindow* window = &expanded;
    if (options.band > 0) {
      constrain_to_band_into(expanded,
                             std::max<std::size_t>(band_at(level), 1),
                             workspace.window_b);
      workspace.window_b.include(0, 0);
      workspace.window_b.include(fx.size() - 1, fy.size() - 1);
      window = &workspace.window_b;
    }
    dtw_windowed(fx, fy, *window, options.cost, workspace, out);
  }
}

DtwResult fast_dtw(std::span<const double> x, std::span<const double> y,
                   const FastDtwOptions& options) {
  DtwWorkspace workspace;
  DtwResult out;
  fast_dtw(x, y, options, workspace, out);
  return out;
}

}  // namespace vp::ts
