#include "timeseries/fast_dtw.h"

#include <algorithm>
#include <vector>

#include "common/error.h"

namespace vp::ts {

std::vector<double> coarsen_by_two(std::span<const double> x) {
  VP_REQUIRE(!x.empty());
  std::vector<double> out;
  out.reserve((x.size() + 1) / 2);
  std::size_t i = 0;
  for (; i + 1 < x.size(); i += 2) out.push_back(0.5 * (x[i] + x[i + 1]));
  if (i < x.size()) out.push_back(x[i]);
  return out;
}

SearchWindow expand_window(std::span<const WarpStep> coarse_path,
                           std::size_t fine_n, std::size_t fine_m,
                           std::size_t radius) {
  VP_REQUIRE(!coarse_path.empty());
  SearchWindow window(fine_n, fine_m);
  for (const WarpStep& step : coarse_path) {
    // Each coarse cell (i,j) covers fine rows {2i, 2i+1} × cols {2j, 2j+1}.
    const std::size_t r0 = std::min(2 * step.i, fine_n - 1);
    const std::size_t r1 = std::min(2 * step.i + 1, fine_n - 1);
    const std::size_t c0 = std::min(2 * step.j, fine_m - 1);
    const std::size_t c1 = std::min(2 * step.j + 1, fine_m - 1);
    window.include_range(r0, c0, c1);
    window.include_range(r1, c0, c1);
  }
  window.expand(radius);
  // The projection of a valid coarse path always covers the corners; the
  // radius expansion can only widen that.
  window.include(0, 0);
  window.include(fine_n - 1, fine_m - 1);
  return window;
}

SearchWindow constrain_to_band(const SearchWindow& window, std::size_t band) {
  const std::size_t n = window.rows();
  const std::size_t m = window.cols();
  SearchWindow out(n, m);
  auto diagonal = [&](std::size_t i) -> std::size_t {
    if (n == 1) return m - 1;
    return static_cast<std::size_t>(
        (static_cast<double>(i) * static_cast<double>(m - 1)) /
            static_cast<double>(n - 1) +
        0.5);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = diagonal(i);
    const std::size_t blo = c >= band ? c - band : 0;
    const std::size_t bhi = std::min(c + band, m - 1);
    if (!window.row_empty(i)) {
      const std::size_t plo = std::max(window.lo(i), blo);
      const std::size_t phi = std::min(window.hi(i), bhi);
      if (plo <= phi) out.include_range(i, plo, phi);
    }
    // Diagonal staircase from this row's centre to the next row's centre
    // keeps the constrained window monotonically connected.
    const std::size_t c_next = diagonal(std::min(i + 1, n - 1));
    out.include_range(i, std::min(c, c_next), std::max(c, c_next));
  }
  return out;
}

namespace {

DtwResult fast_dtw_impl(std::span<const double> x, std::span<const double> y,
                        const FastDtwOptions& options, std::size_t band) {
  // Below this size a full DTW is cheaper than recursing.
  const std::size_t min_size = options.radius + 2;
  if (x.size() <= min_size || y.size() <= min_size) {
    if (options.band == 0) return dtw(x, y, options.cost);
    const SearchWindow window = constrain_to_band(
        SearchWindow::full(x.size(), y.size()), std::max<std::size_t>(band, 1));
    return dtw_windowed(x, y, window, options.cost);
  }
  const std::vector<double> coarse_x = coarsen_by_two(x);
  const std::vector<double> coarse_y = coarsen_by_two(y);
  const DtwResult coarse =
      fast_dtw_impl(coarse_x, coarse_y, options,
                    std::max<std::size_t>(band / 2, 1));
  SearchWindow window =
      expand_window(coarse.path, x.size(), y.size(), options.radius);
  if (options.band > 0) {
    window = constrain_to_band(window, std::max<std::size_t>(band, 1));
    window.include(0, 0);
    window.include(x.size() - 1, y.size() - 1);
  }
  return dtw_windowed(x, y, window, options.cost);
}

}  // namespace

DtwResult fast_dtw(std::span<const double> x, std::span<const double> y,
                   const FastDtwOptions& options) {
  VP_REQUIRE(!x.empty() && !y.empty());
  return fast_dtw_impl(x, y, options, options.band);
}

}  // namespace vp::ts
