#include "timeseries/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace vp::ts {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Parent direction of a DP cell, for path recovery.
enum class Move : unsigned char { kNone, kDiag, kLeft, kUp };
}  // namespace

double local_cost(double a, double b, LocalCost cost) {
  const double d = a - b;
  return cost == LocalCost::kSquared ? d * d : std::fabs(d);
}

SearchWindow::SearchWindow(std::size_t rows, std::size_t cols)
    : cols_(cols), lo_(rows, 0), hi_(rows, 0), set_(rows, false) {
  VP_REQUIRE(rows > 0 && cols > 0);
}

SearchWindow SearchWindow::full(std::size_t rows, std::size_t cols) {
  SearchWindow w(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) w.include_range(i, 0, cols - 1);
  return w;
}

void SearchWindow::reset(std::size_t rows, std::size_t cols) {
  VP_REQUIRE(rows > 0 && cols > 0);
  cols_ = cols;
  lo_.assign(rows, 0);
  hi_.assign(rows, 0);
  set_.assign(rows, false);
}

void SearchWindow::include(std::size_t i, std::size_t j) {
  include_range(i, j, j);
}

void SearchWindow::include_range(std::size_t i, std::size_t jlo,
                                 std::size_t jhi) {
  VP_REQUIRE(i < lo_.size());
  VP_REQUIRE(jlo <= jhi && jhi < cols_);
  if (!set_[i]) {
    lo_[i] = jlo;
    hi_[i] = jhi;
    set_[i] = true;
  } else {
    lo_[i] = std::min(lo_[i], jlo);
    hi_[i] = std::max(hi_[i], jhi);
  }
}

void SearchWindow::expand(std::size_t radius) {
  if (radius == 0) return;
  const std::size_t rows = lo_.size();
  std::vector<std::size_t> new_lo(rows, 0), new_hi(rows, 0);
  std::vector<bool> new_set(rows, false);
  for (std::size_t i = 0; i < rows; ++i) {
    if (!set_[i]) continue;
    const std::size_t r0 = i >= radius ? i - radius : 0;
    const std::size_t r1 = std::min(i + radius, rows - 1);
    const std::size_t c0 = lo_[i] >= radius ? lo_[i] - radius : 0;
    const std::size_t c1 = std::min(hi_[i] + radius, cols_ - 1);
    for (std::size_t r = r0; r <= r1; ++r) {
      if (!new_set[r]) {
        new_lo[r] = c0;
        new_hi[r] = c1;
        new_set[r] = true;
      } else {
        new_lo[r] = std::min(new_lo[r], c0);
        new_hi[r] = std::max(new_hi[r], c1);
      }
    }
  }
  lo_ = std::move(new_lo);
  hi_ = std::move(new_hi);
  set_ = std::move(new_set);
}

bool SearchWindow::row_empty(std::size_t i) const {
  VP_REQUIRE(i < set_.size());
  return !set_[i];
}

std::size_t SearchWindow::lo(std::size_t i) const {
  VP_REQUIRE(i < lo_.size() && set_[i]);
  return lo_[i];
}

std::size_t SearchWindow::hi(std::size_t i) const {
  VP_REQUIRE(i < hi_.size() && set_[i]);
  return hi_[i];
}

std::size_t SearchWindow::cell_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (set_[i]) total += hi_[i] - lo_[i] + 1;
  }
  return total;
}

DtwResult dtw(std::span<const double> x, std::span<const double> y,
              LocalCost cost) {
  VP_REQUIRE(!x.empty() && !y.empty());
  return dtw_windowed(x, y, SearchWindow::full(x.size(), y.size()), cost);
}

void dtw(std::span<const double> x, std::span<const double> y, LocalCost cost,
         DtwWorkspace& workspace, DtwResult& out) {
  VP_REQUIRE(!x.empty() && !y.empty());
  workspace.window_a.reset(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    workspace.window_a.include_range(i, 0, y.size() - 1);
  }
  dtw_windowed(x, y, workspace.window_a, cost, workspace, out);
}

double dtw_distance(std::span<const double> x, std::span<const double> y,
                    LocalCost cost) {
  DtwWorkspace workspace;
  return dtw_distance(x, y, cost, workspace);
}

double dtw_distance(std::span<const double> x, std::span<const double> y,
                    LocalCost cost, DtwWorkspace& workspace) {
  VP_REQUIRE(!x.empty() && !y.empty());
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  std::vector<double>& prev = workspace.prev;
  std::vector<double>& curr = workspace.curr;
  ++workspace.stats.dp_solves;
  workspace.stats.cells += n * m;
  if (m > prev.capacity()) ++workspace.stats.grows;
  prev.assign(m, kInf);
  curr.assign(m, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double c = local_cost(x[i], y[j], cost);
      double best;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, prev[j]);                // up
        if (j > 0) best = std::min(best, curr[j - 1]);            // left
        if (i > 0 && j > 0) best = std::min(best, prev[j - 1]);   // diag
      }
      curr[j] = c + best;
    }
    std::swap(prev, curr);
    std::fill(curr.begin(), curr.end(), kInf);
  }
  return prev[m - 1];
}

DtwResult dtw_windowed(std::span<const double> x, std::span<const double> y,
                       const SearchWindow& window, LocalCost cost) {
  DtwWorkspace workspace;
  DtwResult out;
  dtw_windowed(x, y, window, cost, workspace, out);
  return out;
}

void dtw_windowed(std::span<const double> x, std::span<const double> y,
                  const SearchWindow& window, LocalCost cost,
                  DtwWorkspace& workspace, DtwResult& out) {
  VP_REQUIRE(!x.empty() && !y.empty());
  VP_REQUIRE(window.rows() == x.size());
  VP_REQUIRE(window.cols() == y.size());
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  if (window.row_empty(0) || window.lo(0) != 0 || window.row_empty(n - 1) ||
      window.hi(n - 1) != m - 1) {
    throw InvalidArgument("DTW window must contain (0,0) and (N-1,M-1)");
  }

  // Row-sliced DP storage: for each row keep values and parent moves over
  // [lo, hi] only, flattened into one buffer via per-row offsets so the
  // workspace can recycle a single allocation across calls.
  std::vector<std::size_t>& row_offset = workspace.row_offset;
  row_offset.assign(n, 0);
  std::size_t cells = 0;
  for (std::size_t i = 0; i < n; ++i) {
    row_offset[i] = cells;
    if (window.row_empty(i)) continue;
    cells += window.hi(i) - window.lo(i) + 1;
  }
  std::vector<double>& dp = workspace.dp;
  std::vector<unsigned char>& parent = workspace.parent;
  ++workspace.stats.dp_solves;
  workspace.stats.cells += cells;
  if (cells > dp.capacity()) ++workspace.stats.grows;
  dp.assign(cells, kInf);
  parent.assign(cells, static_cast<unsigned char>(Move::kNone));

  auto cell = [&](std::size_t i, std::size_t j) -> double {
    if (window.row_empty(i)) return kInf;
    if (j < window.lo(i) || j > window.hi(i)) return kInf;
    return dp[row_offset[i] + (j - window.lo(i))];
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (window.row_empty(i)) continue;
    for (std::size_t j = window.lo(i); j <= window.hi(i); ++j) {
      const double c = local_cost(x[i], y[j], cost);
      double best;
      Move move;
      if (i == 0 && j == 0) {
        best = 0.0;
        move = Move::kNone;
      } else {
        best = kInf;
        move = Move::kNone;
        if (i > 0 && j > 0) {
          const double v = cell(i - 1, j - 1);
          if (v < best) {
            best = v;
            move = Move::kDiag;
          }
        }
        if (j > 0) {
          const double v = cell(i, j - 1);
          if (v < best) {
            best = v;
            move = Move::kLeft;
          }
        }
        if (i > 0) {
          const double v = cell(i - 1, j);
          if (v < best) {
            best = v;
            move = Move::kUp;
          }
        }
        if (!std::isfinite(best)) continue;  // unreachable cell
      }
      dp[row_offset[i] + (j - window.lo(i))] = c + best;
      parent[row_offset[i] + (j - window.lo(i))] =
          static_cast<unsigned char>(move);
    }
  }

  const double total = cell(n - 1, m - 1);
  if (!std::isfinite(total)) {
    throw InvalidArgument("DTW window admits no monotone warp path");
  }

  out.distance = total;
  out.path.clear();
  std::size_t i = n - 1;
  std::size_t j = m - 1;
  for (;;) {
    out.path.push_back({i, j});
    const Move move =
        static_cast<Move>(parent[row_offset[i] + (j - window.lo(i))]);
    if (move == Move::kNone) break;
    switch (move) {
      case Move::kDiag:
        --i;
        --j;
        break;
      case Move::kLeft:
        --j;
        break;
      case Move::kUp:
        --i;
        break;
      case Move::kNone:
        break;
    }
  }
  std::reverse(out.path.begin(), out.path.end());
  VP_ENSURE((out.path.front() == WarpStep{0, 0}));
}

namespace {

// Builds the Sakoe–Chiba band window of dtw_banded into `window`. When the
// lengths differ by more than the band, consecutive rows' bands would not
// overlap, so each row additionally covers the diagonal staircase to the
// next row's centre — guaranteeing a monotone path for any size ratio.
void banded_window(std::size_t n, std::size_t m, std::size_t band,
                   SearchWindow& window) {
  auto centre_of = [&](std::size_t i) -> std::size_t {
    if (n == 1) return m - 1;
    return static_cast<std::size_t>(
        (static_cast<double>(i) * static_cast<double>(m - 1)) /
            static_cast<double>(n - 1) +
        0.5);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t centre = centre_of(i);
    const std::size_t jlo = centre >= band ? centre - band : 0;
    const std::size_t jhi = std::min(centre + band, m - 1);
    window.include_range(i, jlo, jhi);
    const std::size_t next = centre_of(std::min(i + 1, n - 1));
    window.include_range(i, std::min(centre, next), std::max(centre, next));
  }
}

}  // namespace

DtwResult dtw_banded(std::span<const double> x, std::span<const double> y,
                     std::size_t band, LocalCost cost) {
  VP_REQUIRE(!x.empty() && !y.empty());
  SearchWindow window(x.size(), y.size());
  banded_window(x.size(), y.size(), band, window);
  return dtw_windowed(x, y, window, cost);
}

void dtw_banded(std::span<const double> x, std::span<const double> y,
                std::size_t band, LocalCost cost, DtwWorkspace& workspace,
                DtwResult& out) {
  VP_REQUIRE(!x.empty() && !y.empty());
  workspace.window_a.reset(x.size(), y.size());
  banded_window(x.size(), y.size(), band, workspace.window_a);
  dtw_windowed(x, y, workspace.window_a, cost, workspace, out);
}

bool is_valid_warp_path(std::span<const WarpStep> path, std::size_t n,
                        std::size_t m) {
  if (path.empty()) return false;
  if (path.front().i != 0 || path.front().j != 0) return false;
  if (path.back().i != n - 1 || path.back().j != m - 1) return false;
  for (std::size_t k = 1; k < path.size(); ++k) {
    const auto& a = path[k - 1];
    const auto& b = path[k];
    const bool monotone = b.i >= a.i && b.j >= a.j;
    const bool step = (b.i - a.i) + (b.j - a.j) >= 1;
    const bool continuous = b.i - a.i <= 1 && b.j - a.j <= 1;
    if (!monotone || !step || !continuous) return false;
  }
  return true;
}

}  // namespace vp::ts
