// UCR-suite style lower/upper bounds for the pairwise DTW sweep, plus the
// anti-diagonal wavefront kernel that replaces the row-sliced windowed DP
// for the band sweeps that survive pruning.
//
// The comparison hot path (core::compare_series) measures the banded
// (Fast)DTW distance between the enhanced Z-images (Eq. 7) of two aligned
// RSSI series and classifies each pair against a threshold. Most pairs are
// nowhere near the threshold, so a cascade of ever-tighter, ever-costlier
// bounds can classify them without running DTW at all:
//
//   LB_Kim   — O(1) from per-series sketches (first/last/min/max/µ/σ):
//              corner costs plus matched-extremes costs. Valid for any
//              warp path, banded or not.
//   UB_diag  — O(n) cost of the main-diagonal alignment. dtw_banded's
//              window and FastDTW's band-constrained final window both
//              contain the diagonal staircase by construction
//              (banded_window / constrain_to_band_into), so for
//              equal-length series the diagonal is always an admissible
//              path and its cost an upper bound.
//   LB_Keogh — O(n·band) Sakoe–Chiba envelope bound over the Z-images,
//              with exact corner costs folded in and maxed with LB_Kim so
//              the cascade is monotone: LB_Kim ≤ LB_Keogh ≤ banded DTW.
//   Kernel   — the banded DP itself, swept by anti-diagonals so the cells
//              of one diagonal have no data dependencies and vectorise
//              (timeseries/simd.h), with early abandoning against a
//              caller-supplied ceiling. Bit-identical in distance AND
//              warp-path length to dtw_banded()/dtw(), so for exact DTW
//              it is not a bound but the answer.
//
// All bounds are on the *accumulated* cost (Eq. 6 scale); callers divide
// by the appropriate path-length extreme when per-step costs are compared
// (see core/comparison.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "timeseries/dtw.h"

namespace vp::ts {

// Two-pass summary of one aligned raw series: everything LB_Kim and the
// envelope bounds need. The mean and 3σ here come from a plain
// sum / sum-of-squared-deviations pass — deliberately NOT the Welford
// accumulation z_score_enhanced uses, because the sketch is computed for
// every candidate pair and the Welford loop's per-element division made it
// the single hottest fixed cost of the cascade. The price is that z() is
// only within `z_err` of the true Z-image value; the bound functions below
// fold that certified error into their results (lower bounds deflated,
// upper bounds inflated), so they stay valid bounds on the true Z-image
// distances and no pruning decision can be flipped by the approximation.
//
// The all-zeros predicate IS exact: z_denom == 0 with z_err == 0 is
// asserted only when !(max > min), which (including the NaN-poisoned
// case) is precisely when the Welford path maps the series to all zeros.
// Near-flat series where the approximation cannot be trusted get
// z_err = +inf, which degenerates every bound (lb 0, ub +inf) and routes
// the pair to the exact tiers.
struct SeriesSketch {
  double first = 0.0, last = 0.0;
  double min = 0.0, max = 0.0;
  double mu = 0.0;
  // ~3σ (population). 0 means the true Z-image is identically zero.
  double z_denom = 0.0;
  // 1 / z_denom (0 for flat series): z() multiplies instead of dividing —
  // the envelope bounds evaluate it per row and division throughput would
  // dominate them. The reciprocal's extra ulp is covered by z_err.
  double z_scale = 0.0;
  // Certified bound on |z(v) - Z(v)| for v in [min, max], where Z is the
  // materialised z_score_enhanced image. 0 for flat series (exact).
  double z_err = 0.0;
  std::size_t n = 0;

  // Approximate enhanced Z-score (Eq. 7) of a raw value of this series,
  // within z_err of the true image. Monotone non-decreasing (z_scale >= 0),
  // so envelopes commute with it.
  double z(double v) const { return (v - mu) * z_scale; }
};

SeriesSketch sketch_series(std::span<const double> xs);

// O(1) lower bound on the accumulated DTW cost between the true Z-images
// of two series. Every warp path matches both corner pairs exactly, and
// some cell matches a value >= each series' max (resp. <= each min), so
// the cost of aligning the two minima and the two maxima is also
// unavoidable. Deflated by the sketches' certified z_err so it remains
// valid despite the approximate Z.
double lb_kim(const SeriesSketch& a, const SeriesSketch& b, LocalCost cost);

// O(n) envelope lower bound (equal lengths only). Row i of the band window
// can only match b-values inside [min, max] over b[i-band .. i+band], so
// each row contributes at least the distance from z(a[i]) to the Z-image
// of that envelope; rows 0 and n-1 contribute their exact corner costs.
// band == 0 or band >= n-1 means the full window (global extremes).
// Returns max(envelope sum, lb_kim(a, b)) so the cascade is monotone.
// Deflated by the certified z_err like lb_kim.
// Envelope scratch lives in `workspace` (env_lo / env_hi).
double lb_keogh(std::span<const double> a, const SeriesSketch& sa,
                std::span<const double> b, const SeriesSketch& sb,
                std::size_t band, LocalCost cost, DtwWorkspace& workspace);

// O(n) upper bound (equal lengths only): the accumulated cost of the
// main-diagonal alignment of the Z-images, inflated by the certified
// z_err. Admissible for dtw_banded with any band and for fast_dtw with
// band >= 1 (see header comment).
double diagonal_upper_bound(std::span<const double> a, const SeriesSketch& sa,
                            std::span<const double> b, const SeriesSketch& sb,
                            LocalCost cost);

struct BandedDistance {
  double distance = 0.0;
  // Number of cells on the recovered-equivalent optimal path — identical
  // to dtw_banded()'s path.size() (same argmin tie-break: diag, left, up).
  std::uint64_t path_cells = 0;
  // True when every cell of two consecutive anti-diagonals exceeded
  // `abandon_above`: since costs are non-negative, every later cell —
  // including the final corner — then exceeds it too, so the exact
  // distance is provably > abandon_above. distance/path_cells are not
  // meaningful in that case.
  bool abandoned = false;
};

// Banded DTW distance between equal-length series by anti-diagonal
// wavefront, vectorised via timeseries/simd.h when `use_simd` (the scalar
// sweep is bit-identical — same operations, same tie-breaks). `band` as in
// dtw_banded; band == 0 or band >= n-1 sweeps the full matrix, matching
// plain dtw(). Pass abandon_above = +infinity to disable early abandoning.
BandedDistance banded_dtw_distance(std::span<const double> x,
                                   std::span<const double> y, std::size_t band,
                                   LocalCost cost, double abandon_above,
                                   bool use_simd, DtwWorkspace& workspace);

// Name of the compiled-in SIMD backend ("avx2", "neon" or "scalar"), for
// bench artefacts and run reports.
const char* simd_backend_name();

}  // namespace vp::ts
