// Normalisations used by Voiceprint's comparison phase.
//
// Pre-processing (Eq. 7): enhanced Z-score, (x − µ)/(3σ), applied per RSSI
// series so that a malicious node spoofing different TX powers per Sybil
// identity (Assumption 3) cannot break the shape similarity — a constant
// power offset shifts µ only and is removed exactly.
//
// Post-processing (Eq. 8): min–max normalisation of the whole set of
// pairwise DTW distances into [0, 1], so a single density-dependent linear
// threshold applies.
#pragma once

#include <span>
#include <vector>

namespace vp::ts {

// Enhanced Z-score of Eq. 7. A constant series (σ = 0, e.g. a far node
// pinned at the −95 dBm sensitivity floor) maps to all zeros.
std::vector<double> z_score_enhanced(std::span<const double> xs);

// Buffer-reusing variant (bitwise the same values): `out` is resized and
// overwritten, recycling its capacity across calls — the comparison
// cascade Z-scores thousands of pairs per round through one scratch
// buffer. `out` must not alias `xs`.
void z_score_enhanced(std::span<const double> xs, std::vector<double>& out);

// Classic Z-score (x − µ)/σ, for the normalisation ablation.
std::vector<double> z_score(std::span<const double> xs);

// In-place min–max normalisation of Eq. 8. If all values are equal the
// result is all zeros.
void min_max_normalize(std::span<double> xs);

// Out-of-place variant.
std::vector<double> min_max_normalized(std::span<const double> xs);

}  // namespace vp::ts
