// Fixed-point (int16 Q4.12) quantised banded DTW with certified error
// pads — the edge-profile companion of the lower-bound cascade
// (DESIGN.md §15).
//
// Enhanced Z-scored series (Eq. 7) live in a narrow numeric range: the
// mean is 0, the population stddev is 1, and |z_i| ≤ (n−1)/√n for any
// sample, with real shadowing traces staying well inside ±8. That makes
// them quantisable to int16 Q4.12 (12 fractional bits, ±8 range) at a
// certified per-sample error of ε = 2⁻¹³, and the banded DTW recurrence
// over the quantised images runs entirely in integer arithmetic — int32
// local costs accumulated in an int64 DP — which is bit-identical across
// platforms, compilers, and SIMD widths by construction.
//
// The integer result is not the true distance, but it bounds it: for the
// true optimal path P* (≤ 2L−1 cells), the integer DP's optimum D_q
// satisfies D_q/scale ≤ cost(P*) + |P*|·cell_pad, so
//
//   D_true ≥ D_q/scale − (2L−1)·cell_pad
//
// with cell_pad = 4ε(Mₐ+M_b+ε) for squared cost (scale 2²⁴) and 2ε for
// absolute cost (scale 2¹²), where Mₐ/M_b are the true max |values| of
// the two series. compare_series_pruned uses this as an extra cascade
// tier: when the deflated integer bound already clears the discard
// threshold the float kernel never runs. Samples outside the Q4.12 range
// saturate; a saturated series voids the certificate and the tier is
// skipped (the cascade falls through to the float kernel unchanged).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "timeseries/dtw.h"

namespace vp::ts {

// Q4.12: 12 fractional bits, representable range ±(2³−2⁻¹²) ≈ ±8.
inline constexpr int kFixedFractionBits = 12;
inline constexpr double kFixedScale = 4096.0;  // 2^kFixedFractionBits
// Round-to-nearest quantisation error: half of one Q4.12 step.
inline constexpr double kFixedEps = 1.0 / (2.0 * kFixedScale);

// Sentinel for fixed_banded_dtw's abandon threshold: never abandon.
inline constexpr std::int64_t kFixedNoAbandon =
    std::numeric_limits<std::int64_t>::max();

struct FixedQuantize {
  double max_abs = 0.0;   // max |value| of the DOUBLE input (for the pad)
  bool saturated = false; // some |value| exceeded the Q4.12 range
};

// Quantises `values` to Q4.12 (round half away from zero) into `out`.
// Out-of-range samples clamp to ±32767 and set `saturated` — the bound
// certificate is void for a saturated series. NaN quantises to 0 and
// saturates (no finite pad covers it).
FixedQuantize quantize_q412(std::span<const double> values,
                            std::vector<std::int16_t>& out);

struct FixedBandedResult {
  // Accumulated integer cost of the optimal banded path: Q24 (= Q12
  // differences squared) for kSquared, Q12 for kAbsolute. Meaningless
  // when abandoned.
  std::int64_t distance = 0;
  bool abandoned = false;
};

// Banded DTW over quantised equal-length series: Sakoe–Chiba window
// |i−j| ≤ band (band == 0 or band ≥ n−1 means the full matrix), the
// Eq. 4 recurrence in int64. If every reachable cell of some row exceeds
// `abandon_above` the result is `abandoned` (the true optimum provably
// exceeds it too). `row_scratch` is caller-owned DP storage (grown as
// needed, never shrunk — allocation-free in steady state).
FixedBandedResult fixed_banded_dtw(std::span<const std::int16_t> a,
                                   std::span<const std::int16_t> b,
                                   std::size_t band, LocalCost cost,
                                   std::int64_t abandon_above,
                                   std::vector<std::int64_t>& row_scratch);

// The accumulated-cost scale of fixed_banded_dtw's integer result.
double fixed_scale(LocalCost cost);

// Certified per-cell quantisation pad (see file comment). max_abs_a/b
// are the true (double) max |values| as reported by quantize_q412.
double fixed_cell_pad(LocalCost cost, double max_abs_a, double max_abs_b);

// Reusable buffers for fixed_banded_lower_bound.
struct FixedDtwScratch {
  std::vector<std::int16_t> qa, qb;
  std::vector<std::int64_t> rows;
};

// Certified lower bound on the true (double-precision) banded-DTW
// accumulated cost of (a, b): quantise both sides, run the integer DP,
// deflate by the path-length × cell pad. Returns −infinity when the
// certificate is unavailable (unequal lengths, empty input, saturation)
// — callers treat that as "no bound" and fall through.
double fixed_banded_lower_bound(std::span<const double> a,
                                std::span<const double> b, std::size_t band,
                                LocalCost cost, FixedDtwScratch& scratch);

}  // namespace vp::ts
