// Lp-norm distances between equal-length series (Eq. 2 of the paper).
// These are the point-to-point alternatives to DTW; the ablation benches
// compare them against DTW/FastDTW under packet loss.
#pragma once

#include <span>

namespace vp::ts {

// D_Lp(X, Y) = (Σ |x_i − y_i|^p)^(1/p). Requires equal lengths and p >= 1.
double lp_distance(std::span<const double> x, std::span<const double> y, int p);

// Convenience wrappers.
double euclidean_distance(std::span<const double> x, std::span<const double> y);
double manhattan_distance(std::span<const double> x, std::span<const double> y);

// Squared Euclidean distance (no final square root) — the same local-cost
// convention DTW uses, handy for like-for-like comparisons.
double squared_euclidean_distance(std::span<const double> x,
                                  std::span<const double> y);

}  // namespace vp::ts
