#include "timeseries/lp_distance.h"

#include <cmath>

#include "common/error.h"

namespace vp::ts {

double lp_distance(std::span<const double> x, std::span<const double> y,
                   int p) {
  VP_REQUIRE(x.size() == y.size());
  VP_REQUIRE(p >= 1);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += std::pow(std::fabs(x[i] - y[i]), p);
  }
  return std::pow(acc, 1.0 / static_cast<double>(p));
}

double euclidean_distance(std::span<const double> x,
                          std::span<const double> y) {
  VP_REQUIRE(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double manhattan_distance(std::span<const double> x,
                          std::span<const double> y) {
  VP_REQUIRE(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += std::fabs(x[i] - y[i]);
  return acc;
}

double squared_euclidean_distance(std::span<const double> x,
                                  std::span<const double> y) {
  VP_REQUIRE(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace vp::ts
