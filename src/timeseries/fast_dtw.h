// FastDTW (Salvador & Chan, "Toward Accurate Dynamic Time Warping in Linear
// Time and Space", 2007) — the approximation the paper adopts for its O(N)
// comparison phase (Section IV-B).
//
// The algorithm recursively (1) coarsens both series by averaging adjacent
// pairs, (2) solves the coarse alignment, (3) projects the coarse warp path
// onto the finer resolution and expands it by `radius` cells, and
// (4) runs windowed DTW inside that neighbourhood.
#pragma once

#include <span>

#include "timeseries/dtw.h"

namespace vp::ts {

struct FastDtwOptions {
  // Neighbourhood half-width around the projected coarse path. Larger radius
  // is more accurate and slower; the original paper reports ~1% error at
  // radius 1 on typical data.
  std::size_t radius = 1;
  LocalCost cost = LocalCost::kSquared;
  // Optional global Sakoe–Chiba constraint (half-width in samples at full
  // resolution, scaled down at coarser levels; 0 = unconstrained). Salvador
  // & Chan list such constraints among the classic DTW speedups; for
  // time-synchronised signals like RSSI beacons it is also a modelling
  // statement — alignment may shift only by a bounded lag.
  std::size_t band = 0;
};

// Approximate DTW distance and warp path. Requires both series non-empty.
DtwResult fast_dtw(std::span<const double> x, std::span<const double> y,
                   const FastDtwOptions& options = {});

// Workspace-reusing variant: the coarsening pyramid, per-level search
// windows and DP storage all live in `workspace` and are recycled across
// calls (see DtwWorkspace's ownership rules). Results are bit-identical to
// fast_dtw above, which wraps this with a per-call workspace.
void fast_dtw(std::span<const double> x, std::span<const double> y,
              const FastDtwOptions& options, DtwWorkspace& workspace,
              DtwResult& out);

// Coarsens a series by averaging adjacent pairs; an odd trailing element is
// kept as-is. Exposed for tests.
std::vector<double> coarsen_by_two(std::span<const double> x);

// In-place variant reusing `out`'s capacity. `out` must not alias `x`.
void coarsen_by_two(std::span<const double> x, std::vector<double>& out);

// Projects a coarse warp path onto series of the given (finer) lengths and
// expands it by `radius`. Exposed for tests.
SearchWindow expand_window(std::span<const WarpStep> coarse_path,
                           std::size_t fine_n, std::size_t fine_m,
                           std::size_t radius);

// Workspace variant; the returned window lives in (and is invalidated by
// the next use of) `workspace`.
const SearchWindow& expand_window(std::span<const WarpStep> coarse_path,
                                  std::size_t fine_n, std::size_t fine_m,
                                  std::size_t radius, DtwWorkspace& workspace);

// Intersects `window` with a Sakoe–Chiba band of the given half-width,
// always keeping the diagonal staircase so a monotone path exists.
// Exposed for tests.
SearchWindow constrain_to_band(const SearchWindow& window, std::size_t band);

}  // namespace vp::ts
