#include "timeseries/series.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vp::ts {

Series::Series(std::vector<double> times, std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  VP_REQUIRE(times_.size() == values_.size());
  VP_REQUIRE(std::is_sorted(times_.begin(), times_.end()));
}

Series Series::uniform(double t0, double period, std::vector<double> values) {
  VP_REQUIRE(period > 0.0);
  std::vector<double> times(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    times[i] = t0 + period * static_cast<double>(i);
  return Series(std::move(times), std::move(values));
}

void Series::add(double time, double value) {
  VP_REQUIRE(times_.empty() || time >= times_.back());
  times_.push_back(time);
  values_.push_back(value);
}

double Series::value(std::size_t i) const {
  VP_REQUIRE(i < values_.size());
  return values_[i];
}

double Series::time(std::size_t i) const {
  VP_REQUIRE(i < times_.size());
  return times_[i];
}

Series Series::slice_time(double t_begin, double t_end) const {
  VP_REQUIRE(t_begin <= t_end);
  const auto lo = std::lower_bound(times_.begin(), times_.end(), t_begin);
  const auto hi = std::lower_bound(times_.begin(), times_.end(), t_end);
  const auto a = static_cast<std::size_t>(lo - times_.begin());
  const auto b = static_cast<std::size_t>(hi - times_.begin());
  return Series(std::vector<double>(times_.begin() + a, times_.begin() + b),
                std::vector<double>(values_.begin() + a, values_.begin() + b));
}

Series Series::tail(std::size_t n) const {
  const std::size_t start = n >= size() ? 0 : size() - n;
  return Series(std::vector<double>(times_.begin() + start, times_.end()),
                std::vector<double>(values_.begin() + start, values_.end()));
}

Series Series::moving_average(std::size_t window) const {
  VP_REQUIRE(window % 2 == 1);
  if (window == 1 || size() < 2) return *this;
  const std::size_t half = window / 2;
  std::vector<double> out(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(i + half, values_.size() - 1);
    double acc = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) acc += values_[j];
    out[i] = acc / static_cast<double>(hi - lo + 1);
  }
  return Series(times_, std::move(out));
}

Series Series::resample(std::size_t n) const {
  VP_REQUIRE(size() >= 2);
  VP_REQUIRE(n >= 2);
  const double t0 = times_.front();
  const double t1 = times_.back();
  std::vector<double> times(n);
  std::vector<double> values(n);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t =
        t0 + (t1 - t0) * static_cast<double>(i) / static_cast<double>(n - 1);
    while (cursor + 1 < times_.size() && times_[cursor + 1] < t) ++cursor;
    const std::size_t j = std::min(cursor + 1, times_.size() - 1);
    const double dt = times_[j] - times_[cursor];
    const double frac = dt <= 0.0 ? 0.0 : std::clamp((t - times_[cursor]) / dt, 0.0, 1.0);
    times[i] = t;
    values[i] = values_[cursor] + frac * (values_[j] - values_[cursor]);
  }
  return Series(std::move(times), std::move(values));
}

}  // namespace vp::ts
