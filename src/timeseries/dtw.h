// Dynamic Time Warping (Section IV-B of the paper).
//
// DTW aligns two series of possibly different lengths by warping them in
// the temporal domain: it fills an N×M cost matrix with local costs
// c(i,j) (Eq. 3), accumulates D(i,j) = c(i,j) + min(D(i−1,j), D(i,j−1),
// D(i−1,j−1)) (Eq. 4), and reports D(N,M) (Eq. 6) together with the optimal
// warp path (Eq. 5 constraints: boundary, monotonicity, continuity).
//
// The windowed variant restricts evaluation to a per-row column band; it is
// the building block FastDTW uses to get linear-time behaviour.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace vp::ts {

// Local cost between aligned points. The paper uses the squared difference
// (Eq. 3); absolute difference is provided for the ablation benches.
enum class LocalCost { kSquared, kAbsolute };

double local_cost(double a, double b, LocalCost cost);

// One alignment step: element i of X matched to element j of Y (0-based).
struct WarpStep {
  std::size_t i = 0;
  std::size_t j = 0;
  friend bool operator==(const WarpStep&, const WarpStep&) = default;
};

struct DtwResult {
  double distance = 0.0;
  // Optimal warp path from (0,0) to (N−1,M−1), inclusive.
  std::vector<WarpStep> path;
};

// A per-row contiguous column band over an N×M alignment matrix. Rows index
// X, columns index Y. Rows not touched by include() have an empty band.
class SearchWindow {
 public:
  SearchWindow(std::size_t rows, std::size_t cols);

  // The full matrix (plain DTW's window).
  static SearchWindow full(std::size_t rows, std::size_t cols);

  // Re-dimensions the window to rows×cols with every band empty, reusing
  // the existing storage (no allocation once capacity is established).
  void reset(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return lo_.size(); }
  std::size_t cols() const { return cols_; }

  // Widens row i's band to cover column j (or [jlo, jhi]).
  void include(std::size_t i, std::size_t j);
  void include_range(std::size_t i, std::size_t jlo, std::size_t jhi);

  // Expands every band by `radius` cells in both row and column directions
  // (the FastDTW neighbourhood), clamped to the matrix.
  void expand(std::size_t radius);

  bool row_empty(std::size_t i) const;
  std::size_t lo(std::size_t i) const;  // requires !row_empty(i)
  std::size_t hi(std::size_t i) const;  // inclusive

  // Total number of cells inside the window.
  std::size_t cell_count() const;

 private:
  std::size_t cols_;
  std::vector<std::size_t> lo_;
  std::vector<std::size_t> hi_;
  std::vector<bool> set_;
};

// Reusable scratch for the whole DTW family (plain, windowed, banded,
// distance-only, and FastDTW). The pairwise comparison sweep calls DTW
// thousands of times per detection round; with a workspace the cost
// matrix, parent moves, search windows, warp paths and FastDTW's
// coarsening pyramid are allocated once per worker and grow to the
// high-water mark instead of being reallocated per pair.
//
// Ownership rules: a workspace is owned by exactly one thread at a time
// (one workspace per pool worker); the workspace-taking entry points below
// may use any buffer in it, so never share one workspace between
// concurrently running calls. Every buffer is fully (re)initialised by the
// call that uses it, so results are bit-identical to the workspace-free
// entry points — those are thin wrappers that run on a fresh workspace.
//
// The members are internal scratch for the functions of this header and
// fast_dtw.h; treat them as opaque.
struct DtwWorkspace {
  // Instrumentation accumulated across every DP solve run on this
  // workspace. Plain fields, always on: a workspace is owned by one
  // thread at a time, and the counters cost three integer ops per solve.
  // dp_solves − grows is the number of solves fully served from recycled
  // capacity ("workspace reuse hits" in the run report).
  struct Stats {
    std::uint64_t dp_solves = 0;  // windowed/banded/full + distance solves
    std::uint64_t cells = 0;      // DP cells expanded across all solves
    std::uint64_t grows = 0;      // solves that had to grow the DP buffer
  };

  DtwWorkspace() = default;
  DtwWorkspace(const DtwWorkspace&) = delete;
  DtwWorkspace& operator=(const DtwWorkspace&) = delete;
  DtwWorkspace(DtwWorkspace&&) = default;
  DtwWorkspace& operator=(DtwWorkspace&&) = default;

  // dtw_distance rolling rows.
  std::vector<double> prev, curr;
  // dtw_windowed row-sliced DP storage, flattened over the window cells.
  std::vector<double> dp;
  std::vector<unsigned char> parent;
  std::vector<std::size_t> row_offset;
  // FastDTW coarsening pyramid (level k holds the series coarsened k+1
  // times); the outer vectors only ever grow so inner capacity survives.
  std::vector<std::vector<double>> pyramid_x, pyramid_y;
  // FastDTW per-level scratch: previous level's path and the two search
  // windows (projection+expansion, band intersection).
  std::vector<WarpStep> coarse_path;
  SearchWindow window_a{1, 1}, window_b{1, 1};
  // expand_window projection bands (per fine row, before radius growth).
  std::vector<std::size_t> proj_lo, proj_hi;
  std::vector<unsigned char> proj_set;
  // Lower-bound cascade scratch (timeseries/lower_bound.h): cached
  // Sakoe–Chiba envelopes for LB_Keogh, the materialised Z-images of the
  // pair under comparison plus a reversed-x copy (so the anti-diagonal
  // wavefront kernel reads x with contiguous loads), and the kernel's
  // rotating wavefront diagonals — accumulated cost and path length kept
  // as two structure-of-arrays triples.
  std::vector<double> env_lo, env_hi;
  std::vector<double> zx, zy, zx_rev;
  std::array<std::vector<double>, 3> wave_d, wave_l;
  // SoA batch arena: core::compare_series parks each worker's aligned
  // pair values here back-to-back during the cascade's bound pass, so the
  // resolve pass re-reads them without per-pair allocations.
  std::vector<double> batch_values;

  Stats stats;
};

// Full DTW with path recovery. Requires both series non-empty.
DtwResult dtw(std::span<const double> x, std::span<const double> y,
              LocalCost cost = LocalCost::kSquared);

// Distance only, O(M) memory — used in throughput benchmarks.
double dtw_distance(std::span<const double> x, std::span<const double> y,
                    LocalCost cost = LocalCost::kSquared);

// DTW restricted to the window. Cells outside the window are unreachable.
// The window must contain (0,0) and (N−1,M−1) and admit at least one
// monotone path; otherwise InvalidArgument is thrown.
DtwResult dtw_windowed(std::span<const double> x, std::span<const double> y,
                       const SearchWindow& window,
                       LocalCost cost = LocalCost::kSquared);

// DTW constrained to a Sakoe–Chiba band of the given half-width.
DtwResult dtw_banded(std::span<const double> x, std::span<const double> y,
                     std::size_t band, LocalCost cost = LocalCost::kSquared);

// Workspace-reusing variants. Results (distance and path) are bit-identical
// to the wrappers above; `out` is cleared and refilled, reusing its path
// capacity across calls.
void dtw(std::span<const double> x, std::span<const double> y, LocalCost cost,
         DtwWorkspace& workspace, DtwResult& out);
double dtw_distance(std::span<const double> x, std::span<const double> y,
                    LocalCost cost, DtwWorkspace& workspace);
void dtw_windowed(std::span<const double> x, std::span<const double> y,
                  const SearchWindow& window, LocalCost cost,
                  DtwWorkspace& workspace, DtwResult& out);
void dtw_banded(std::span<const double> x, std::span<const double> y,
                std::size_t band, LocalCost cost, DtwWorkspace& workspace,
                DtwResult& out);

// True if `path` satisfies the boundary, monotonicity and continuity
// constraints of Eq. 5 for series of the given lengths.
bool is_valid_warp_path(std::span<const WarpStep> path, std::size_t n,
                        std::size_t m);

}  // namespace vp::ts
