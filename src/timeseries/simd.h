// Portable SIMD wrapper for the banded-DTW wavefront kernel
// (timeseries/lower_bound.cpp). One backend is selected at build time:
//
//   * AVX2 (x86-64, 4 × double lanes) when the TU is compiled with -mavx2
//     or -march=native on a machine that has it;
//   * NEON (AArch64, 2 × double lanes);
//   * scalar (1 lane) everywhere else, or when the build forces it with
//     -DVP_FORCE_SCALAR_SIMD (the CMake option VP_SIMD=scalar) — the CI
//     job that keeps this wrapper honest.
//
// Bit-exactness contract: every operation here maps to one IEEE-754
// double operation per lane (add, sub, mul, min, compare, select). No
// horizontal reduction reorders additions and the kernels never use FMA,
// so a computation expressed through VecD produces bit-identical results
// on every backend — which is what lets the pruned cascade share parity
// tests with the scalar reference path. (-ffp-contract=off in the
// top-level CMakeLists keeps the scalar compiler output to the same
// contract.)
#pragma once

#include <algorithm>
#include <cstddef>

#if !defined(VP_FORCE_SCALAR_SIMD) && defined(__AVX2__)
#define VP_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(VP_FORCE_SCALAR_SIMD) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define VP_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace vp::ts::simd {

#if defined(VP_SIMD_AVX2)

inline constexpr std::size_t kWidth = 4;
inline constexpr const char* kBackend = "avx2";

struct VecD {
  __m256d v;
};
using Mask = VecD;  // all-ones / all-zeros lanes from cmp_lt

inline VecD set1(double x) { return {_mm256_set1_pd(x)}; }
inline VecD loadu(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void storeu(double* p, VecD a) { _mm256_storeu_pd(p, a.v); }
inline VecD add(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
inline VecD sub(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline VecD mul(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline VecD min(VecD a, VecD b) { return {_mm256_min_pd(a.v, b.v)}; }
inline VecD abs(VecD a) {
  return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
}
inline Mask cmp_lt(VecD a, VecD b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
}
// Lanes where `mask` is set take `a`, the rest take `b`.
inline VecD select(Mask mask, VecD a, VecD b) {
  return {_mm256_blendv_pd(b.v, a.v, mask.v)};
}
inline double horizontal_min(VecD a) {
  const __m128d lo = _mm256_castpd256_pd128(a.v);
  const __m128d hi = _mm256_extractf128_pd(a.v, 1);
  const __m128d m = _mm_min_pd(lo, hi);
  return std::min(_mm_cvtsd_f64(m),
                  _mm_cvtsd_f64(_mm_unpackhi_pd(m, m)));
}

#elif defined(VP_SIMD_NEON)

inline constexpr std::size_t kWidth = 2;
inline constexpr const char* kBackend = "neon";

struct VecD {
  float64x2_t v;
};
struct Mask {
  uint64x2_t v;
};

inline VecD set1(double x) { return {vdupq_n_f64(x)}; }
inline VecD loadu(const double* p) { return {vld1q_f64(p)}; }
inline void storeu(double* p, VecD a) { vst1q_f64(p, a.v); }
inline VecD add(VecD a, VecD b) { return {vaddq_f64(a.v, b.v)}; }
inline VecD sub(VecD a, VecD b) { return {vsubq_f64(a.v, b.v)}; }
inline VecD mul(VecD a, VecD b) { return {vmulq_f64(a.v, b.v)}; }
inline VecD min(VecD a, VecD b) { return {vminq_f64(a.v, b.v)}; }
inline VecD abs(VecD a) { return {vabsq_f64(a.v)}; }
inline Mask cmp_lt(VecD a, VecD b) { return {vcltq_f64(a.v, b.v)}; }
inline VecD select(Mask mask, VecD a, VecD b) {
  return {vbslq_f64(mask.v, a.v, b.v)};
}
inline double horizontal_min(VecD a) {
  return std::min(vgetq_lane_f64(a.v, 0), vgetq_lane_f64(a.v, 1));
}

#else

inline constexpr std::size_t kWidth = 1;
inline constexpr const char* kBackend = "scalar";

struct VecD {
  double v;
};
struct Mask {
  bool v;
};

inline VecD set1(double x) { return {x}; }
inline VecD loadu(const double* p) { return {*p}; }
inline void storeu(double* p, VecD a) { *p = a.v; }
inline VecD add(VecD a, VecD b) { return {a.v + b.v}; }
inline VecD sub(VecD a, VecD b) { return {a.v - b.v}; }
inline VecD mul(VecD a, VecD b) { return {a.v * b.v}; }
inline VecD min(VecD a, VecD b) { return {std::min(a.v, b.v)}; }
inline VecD abs(VecD a) { return {a.v < 0.0 ? -a.v : a.v}; }
inline Mask cmp_lt(VecD a, VecD b) { return {a.v < b.v}; }
inline VecD select(Mask mask, VecD a, VecD b) { return mask.v ? a : b; }
inline double horizontal_min(VecD a) { return a.v; }

#endif

// True when the build carries a real vector backend (width > 1); the
// `--simd` runtime flag can still force the scalar sweep for A/B runs.
inline constexpr bool vectorized() { return kWidth > 1; }

}  // namespace vp::ts::simd
