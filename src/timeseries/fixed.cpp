#include "timeseries/fixed.h"

#include <algorithm>
#include <cmath>

namespace vp::ts {

namespace {

// Unreachable-cell sentinel. INT64_MAX/4 keeps `sentinel + local cost`
// (≤ 2³² in Q24) far from overflow while still dominating any reachable
// accumulated cost.
constexpr std::int64_t kUnreachable =
    std::numeric_limits<std::int64_t>::max() / 4;

std::int64_t local_cost_q(std::int16_t a, std::int16_t b, LocalCost cost) {
  // |a − b| ≤ 65534 fits int32; the square fits int64 comfortably.
  const std::int32_t d =
      static_cast<std::int32_t>(a) - static_cast<std::int32_t>(b);
  if (cost == LocalCost::kSquared) {
    return static_cast<std::int64_t>(d) * static_cast<std::int64_t>(d);
  }
  return static_cast<std::int64_t>(d < 0 ? -d : d);
}

}  // namespace

FixedQuantize quantize_q412(std::span<const double> values,
                            std::vector<std::int16_t>& out) {
  out.resize(values.size());
  FixedQuantize result;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (!std::isfinite(v)) {
      out[i] = 0;
      result.saturated = true;
      continue;
    }
    const double a = std::abs(v);
    if (a > result.max_abs) result.max_abs = a;
    // Round half away from zero, like llround; the quantisation error is
    // at most half a step (kFixedEps) unless the value clamps.
    const long long q = std::llround(v * kFixedScale);
    if (q > 32767 || q < -32767) {
      out[i] = q > 0 ? std::int16_t{32767} : std::int16_t{-32767};
      result.saturated = true;
    } else {
      out[i] = static_cast<std::int16_t>(q);
    }
  }
  return result;
}

FixedBandedResult fixed_banded_dtw(std::span<const std::int16_t> a,
                                   std::span<const std::int16_t> b,
                                   std::size_t band, LocalCost cost,
                                   std::int64_t abandon_above,
                                   std::vector<std::int64_t>& row_scratch) {
  const std::size_t n = a.size();
  FixedBandedResult result;
  if (n == 0 || b.size() != n) {
    result.abandoned = true;
    return result;
  }
  const std::size_t eff_band = (band == 0 || band >= n) ? n : band;

  // Two DP rows, full matrix width, with kUnreachable outside the band.
  if (row_scratch.size() < 2 * n) row_scratch.resize(2 * n);
  std::int64_t* prev = row_scratch.data();
  std::int64_t* cur = row_scratch.data() + n;

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i > eff_band ? i - eff_band : 0;
    const std::size_t hi = std::min(n - 1, i + eff_band);
    // Cells left of the band on this row (and the cell just left of lo,
    // read by the j−1 transitions) must look unreachable.
    if (lo > 0) cur[lo - 1] = kUnreachable;
    std::int64_t row_min = kUnreachable;
    for (std::size_t j = lo; j <= hi; ++j) {
      const std::int64_t c = local_cost_q(a[i], b[j], cost);
      std::int64_t base;
      if (i == 0) {
        base = j == 0 ? 0 : cur[j - 1];
      } else {
        base = prev[j];  // rows were fully initialised: see below
        if (j > 0) {
          base = std::min(base, prev[j - 1]);
          base = std::min(base, cur[j - 1]);
        }
      }
      cur[j] = base >= kUnreachable ? kUnreachable : base + c;
      row_min = std::min(row_min, cur[j]);
    }
    // Cells right of the band, read as prev[j]/prev[j-1] by the next row.
    for (std::size_t j = hi + 1; j < n && j <= hi + 2; ++j) {
      cur[j] = kUnreachable;
    }
    if (row_min > abandon_above) {
      result.abandoned = true;
      return result;
    }
    std::swap(prev, cur);
  }
  result.distance = prev[n - 1];
  result.abandoned = result.distance >= kUnreachable;
  return result;
}

double fixed_scale(LocalCost cost) {
  return cost == LocalCost::kSquared ? kFixedScale * kFixedScale : kFixedScale;
}

double fixed_cell_pad(LocalCost cost, double max_abs_a, double max_abs_b) {
  if (cost == LocalCost::kAbsolute) return 2.0 * kFixedEps;
  // |(u+e)² − u²| ≤ 2|u||e| + e² with |u| ≤ Mₐ+M_b and |e| ≤ 2ε.
  return 4.0 * kFixedEps * (max_abs_a + max_abs_b + kFixedEps);
}

double fixed_banded_lower_bound(std::span<const double> a,
                                std::span<const double> b, std::size_t band,
                                LocalCost cost, FixedDtwScratch& scratch) {
  constexpr double kNoBound = -std::numeric_limits<double>::infinity();
  if (a.empty() || a.size() != b.size()) return kNoBound;
  const FixedQuantize qa = quantize_q412(a, scratch.qa);
  if (qa.saturated) return kNoBound;
  const FixedQuantize qb = quantize_q412(b, scratch.qb);
  if (qb.saturated) return kNoBound;
  const FixedBandedResult r = fixed_banded_dtw(
      scratch.qa, scratch.qb, band, cost, kFixedNoAbandon, scratch.rows);
  if (r.abandoned) return kNoBound;
  const double steps_max = static_cast<double>(2 * a.size() - 1);
  const double pad = fixed_cell_pad(cost, qa.max_abs, qb.max_abs);
  return static_cast<double>(r.distance) / fixed_scale(cost) -
         steps_max * pad;
}

}  // namespace vp::ts
