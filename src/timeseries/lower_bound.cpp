#include "timeseries/lower_bound.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "common/error.h"
#include "timeseries/simd.h"

namespace vp::ts {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Conservative pad for a bound accumulated over (at most) m local costs
// whose Z-arguments each carry absolute error <= e. With d' the computed
// difference and d the true one, |d - d'| <= e, so
//   squared cost:  |d'^2 - d^2| <= 2|d'|e + e^2; summed over m terms and
//                  Cauchy-Schwarz'd, err <= 2e*sqrt(m*S) + m*e^2
//   absolute cost: err <= m*e.
// Doubled for headroom over the sum's own rounding; pruning comparisons
// in core/comparison.cpp add a relative slack on top.
double bound_pad(double sum, std::size_t m, double e, LocalCost cost) {
  if (!(e > 0.0)) return 0.0;
  const double md = static_cast<double>(m);
  const double pad = cost == LocalCost::kSquared
                         ? 2.0 * e * std::sqrt(md * std::max(sum, 0.0)) +
                               md * e * e
                         : md * e;
  return 2.0 * pad;
}
}  // namespace

const char* simd_backend_name() { return simd::kBackend; }

SeriesSketch sketch_series(std::span<const double> xs) {
  VP_REQUIRE(!xs.empty());
  const std::size_t n = xs.size();
  // Two independent accumulator chains: the serial add latency, not
  // throughput, bounds this loop. The changed summation order drifts from
  // the single-chain sum by O(n*eps) — inside the certified z_err budget.
  double mn = xs[0];
  double mx = xs[0];
  double s0 = 0.0;
  double s1 = 0.0;
  std::size_t i = 0;
  for (; i + 1 < n; i += 2) {
    mn = std::min(mn, std::min(xs[i], xs[i + 1]));
    mx = std::max(mx, std::max(xs[i], xs[i + 1]));
    s0 += xs[i];
    s1 += xs[i + 1];
  }
  if (i < n) {
    mn = std::min(mn, xs[i]);
    mx = std::max(mx, xs[i]);
    s0 += xs[i];
  }
  const double sum = s0 + s1;
  SeriesSketch s;
  s.first = xs.front();
  s.last = xs.back();
  s.min = mn;
  s.max = mx;
  s.mu = sum / static_cast<double>(n);
  s.n = n;
  if (!(mx > mn)) {
    // Flat or NaN-poisoned: exactly the inputs z_score_impl's Welford pass
    // maps to the all-zeros image (equal values keep its running mean
    // exact, so M2 stays 0; any NaN poisons sigma). The sketch's zero
    // image is therefore the true image, with no error.
    return s;
  }
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - s.mu;
    ss += d * d;
  }
  const double sigma = std::sqrt(ss / static_cast<double>(n));
  if (!(sigma > 0.0)) {
    // Distinct values whose deviations underflowed (or overflow/NaN fell
    // out of the sums): the true image may be nonzero but the sketch
    // cannot model it. Infinite error degenerates every bound and routes
    // the pair to the exact tiers.
    s.z_err = kInf;
    return s;
  }
  const double z_scale = 1.0 / (3.0 * sigma);
  if (!std::isfinite(z_scale)) {
    // Subnormal sigma: the reciprocal overflowed. Same untrusted route.
    s.z_err = kInf;
    return s;
  }
  s.z_denom = 3.0 * sigma;
  s.z_scale = z_scale;
  // Certified |z - Z| over [min, max]. Naive-sum mean and two-pass sigma
  // each drift from the Welford values by O(n*eps) relative terms; the
  // mean's absolute error scales with max|x| (the `ratio` factor) and the
  // sigma error enters multiplied by |Z| (the `zmax` factor). The product
  // form dominates every cross term — including the single extra ulp from
  // z() multiplying by the reciprocal instead of dividing — and the
  // constant is ~16x the worst first-order coefficient. A tiny sigma blows
  // `ratio` up, which correctly degenerates the bounds instead of trusting
  // the sketch.
  const double ratio = std::max(std::fabs(mn), std::fabs(mx)) * z_scale;
  const double zmax = std::max(std::fabs(s.z(mn)), std::fabs(s.z(mx)));
  s.z_err = 64.0 * static_cast<double>(n) *
            std::numeric_limits<double>::epsilon() * (1.0 + ratio) *
            (1.0 + zmax);
  return s;
}

double lb_kim(const SeriesSketch& a, const SeriesSketch& b, LocalCost cost) {
  // Corner cells (0,0) and (N-1,M-1) are on every warp path; they are two
  // distinct cells whenever the matrix has more than one cell.
  double corners = local_cost(a.z(a.first), b.z(b.first), cost);
  if (a.n + b.n > 2) {
    corners += local_cost(a.z(a.last), b.z(b.last), cost);
  }
  // Some path cell matches a's minimum against a b-value >= b's minimum
  // (or vice versa), so a cost of at least c(min_a, min_b) is unavoidable;
  // symmetrically for the maxima. (One cell, hence max not sum.)
  const double extremes =
      std::max(local_cost(a.z(a.min), b.z(b.min), cost),
               local_cost(a.z(a.max), b.z(b.max), cost));
  const double kim = std::max(corners, extremes);
  return std::max(0.0, kim - bound_pad(kim, 2, a.z_err + b.z_err, cost));
}

double lb_keogh(std::span<const double> a, const SeriesSketch& sa,
                std::span<const double> b, const SeriesSketch& sb,
                std::size_t band, LocalCost cost, DtwWorkspace& workspace) {
  VP_REQUIRE(a.size() == b.size() && !a.empty());
  const std::size_t n = a.size();
  const double kim = lb_kim(sa, sb, cost);
  if (n < 3) return kim;  // corner rows only — LB_Kim already covers them

  // Exact corner costs for rows 0 and n-1 (those cells are forced).
  double sum = local_cost(sa.z(a.front()), sb.z(b.front()), cost) +
               local_cost(sa.z(a.back()), sb.z(b.back()), cost);

  const double e = sa.z_err + sb.z_err;
  const bool squared = cost == LocalCost::kSquared;
  // Inline per-row cost: this loop runs for nearly every candidate pair
  // and the out-of-line local_cost call dominates it.
  const auto row_cost = [squared](double d) { return squared ? d * d : std::fabs(d); };
  const bool full = band == 0 || band >= n - 1;
  if (full) {
    // Degenerate envelope: any row may match any b value.
    const double zu = sb.z(sb.max);
    const double zl = sb.z(sb.min);
    for (std::size_t i = 1; i + 1 < n; ++i) {
      const double za = sa.z(a[i]);
      if (za > zu) {
        sum += row_cost(za - zu);
      } else if (za < zl) {
        sum += row_cost(za - zl);
      }
    }
    return std::max(std::max(0.0, sum - bound_pad(sum, n, e, cost)), kim);
  }

  // Raw-domain sliding min/max envelope of b over [i-band, i+band]. The
  // Z-transform is monotone non-decreasing, so Z(envelope) = envelope(Z)
  // and the envelope never needs the materialised Z-image.
  std::vector<double>& env_lo = workspace.env_lo;
  std::vector<double>& env_hi = workspace.env_hi;
  env_lo.resize(n);
  env_hi.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t jlo = i >= band ? i - band : 0;
    const std::size_t jhi = std::min(i + band, n - 1);
    double lo = b[jlo];
    double hi = b[jlo];
    for (std::size_t j = jlo + 1; j <= jhi; ++j) {
      lo = std::min(lo, b[j]);
      hi = std::max(hi, b[j]);
    }
    env_lo[i] = lo;
    env_hi[i] = hi;
  }

  // Row i of the band window only matches b-values inside its envelope, so
  // it contributes at least the cost from z(a[i]) to the envelope's Z-image;
  // distinct rows are distinct path cells, so the contributions add.
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double za = sa.z(a[i]);
    const double zu = sb.z(env_hi[i]);
    const double zl = sb.z(env_lo[i]);
    if (za > zu) {
      sum += local_cost(za, zu, cost);
    } else if (za < zl) {
      sum += local_cost(za, zl, cost);
    }
  }
  return std::max(std::max(0.0, sum - bound_pad(sum, n, e, cost)), kim);
}

double diagonal_upper_bound(std::span<const double> a, const SeriesSketch& sa,
                            std::span<const double> b, const SeriesSketch& sb,
                            LocalCost cost) {
  VP_REQUIRE(a.size() == b.size() && !a.empty());
  // Specialised accumulation: this runs once per candidate pair, and the
  // generic per-element local_cost call plus the serial add chain double
  // its cost. Reordered summation drifts by O(n*eps) — inside the pad.
  const std::size_t n = a.size();
  const double ma = sa.mu;
  const double ka = sa.z_scale;
  const double mb = sb.mu;
  const double kb = sb.z_scale;
  double s0 = 0.0;
  double s1 = 0.0;
  std::size_t i = 0;
  if (cost == LocalCost::kSquared) {
    for (; i + 1 < n; i += 2) {
      const double d0 = (a[i] - ma) * ka - (b[i] - mb) * kb;
      const double d1 = (a[i + 1] - ma) * ka - (b[i + 1] - mb) * kb;
      s0 += d0 * d0;
      s1 += d1 * d1;
    }
    if (i < n) {
      const double d = (a[i] - ma) * ka - (b[i] - mb) * kb;
      s0 += d * d;
    }
  } else {
    for (; i + 1 < n; i += 2) {
      s0 += std::fabs((a[i] - ma) * ka - (b[i] - mb) * kb);
      s1 += std::fabs((a[i + 1] - ma) * ka - (b[i + 1] - mb) * kb);
    }
    if (i < n) s0 += std::fabs((a[i] - ma) * ka - (b[i] - mb) * kb);
  }
  const double sum = s0 + s1;
  const double ub = sum + bound_pad(sum, a.size(), sa.z_err + sb.z_err, cost);
  // An untrusted sketch (z_err = +inf) can push the sum through inf - inf;
  // +inf keeps the bound valid and the callers' UB-ordered sorts total.
  return std::isnan(ub) ? kInf : ub;
}


namespace {

// The wavefront DP over one anti-diagonal k reads only diagonals k-1 and
// k-2, so its cells are data-independent and vectorise. Buffers are sized
// n+2 and addressed through a +1-offset pointer: position j-1 is valid for
// j = 0, and the slots one past each diagonal's active range hold +inf
// guards, which is exactly how the row-sliced DP treats out-of-window
// parents. Path lengths ride along as doubles (exact up to 2^53) through
// the same select tie-break — diag first, then left, then up, strict < —
// that dtw_windowed uses, so both the distance and the path length are
// bit-identical to dtw_banded()/dtw().
template <bool kSquaredCost, bool kVector>
BandedDistance wavefront_sweep(const double* xr, const double* y,
                               std::ptrdiff_t n, std::ptrdiff_t w,
                               double abandon_above, DtwWorkspace& workspace) {
  const std::size_t needed = static_cast<std::size_t>(n) + 2;
  ++workspace.stats.dp_solves;
  if (needed > workspace.wave_d[0].capacity()) ++workspace.stats.grows;
  double* d[3];
  double* l[3];
  for (int r = 0; r < 3; ++r) {
    workspace.wave_d[r].assign(needed, kInf);
    workspace.wave_l[r].assign(needed, 0.0);
    d[r] = workspace.wave_d[r].data() + 1;
    l[r] = workspace.wave_l[r].data() + 1;
  }

  double prev_min = kInf;
  std::uint64_t cells = 0;
  for (std::ptrdiff_t k = 0; k <= 2 * (n - 1); ++k) {
    double* dk = d[k % 3];
    double* lk = l[k % 3];
    const double* dk1 = d[(k + 2) % 3];
    const double* lk1 = l[(k + 2) % 3];
    const double* dk2 = d[(k + 1) % 3];
    const double* lk2 = l[(k + 1) % 3];

    // Column range of diagonal k: inside the matrix and |i-j| <= w with
    // i = k - j. Both ends are non-decreasing in k (by at most 1 per
    // step), which is what makes the two guard slots below sufficient.
    std::ptrdiff_t jlo = std::max<std::ptrdiff_t>(0, k - (n - 1));
    if (k - w + 1 > 0) jlo = std::max(jlo, (k - w + 1) / 2);
    const std::ptrdiff_t jhi =
        std::min(std::min(k, n - 1), (k + w) / 2);
    cells += static_cast<std::uint64_t>(jhi - jlo + 1);

    double cur_min = kInf;
    if (k == 0) {
      // Base cell (0,0): accumulated cost is the local cost alone.
      const double dd = xr[n - 1] - y[0];
      const double c = kSquaredCost ? dd * dd : std::fabs(dd);
      dk[0] = c;
      lk[0] = 1.0;
      cur_min = c;
    } else {
      // x[i] = x[k-j] = xr[n-1-k+j]: contiguous in j via the reversed copy.
      const double* xrow = xr + (n - 1 - k);
      std::ptrdiff_t j = jlo;
      if constexpr (kVector) {
        const std::ptrdiff_t kW =
            static_cast<std::ptrdiff_t>(simd::kWidth);
        simd::VecD acc = simd::set1(kInf);
        const simd::VecD one = simd::set1(1.0);
        for (; j + kW <= jhi + 1; j += kW) {
          simd::VecD best = simd::loadu(dk2 + j - 1);   // diag
          simd::VecD len = simd::loadu(lk2 + j - 1);
          const simd::VecD left = simd::loadu(dk1 + j - 1);
          const simd::VecD lleft = simd::loadu(lk1 + j - 1);
          const auto m1 = simd::cmp_lt(left, best);
          best = simd::select(m1, left, best);
          len = simd::select(m1, lleft, len);
          const simd::VecD up = simd::loadu(dk1 + j);
          const simd::VecD lup = simd::loadu(lk1 + j);
          const auto m2 = simd::cmp_lt(up, best);
          best = simd::select(m2, up, best);
          len = simd::select(m2, lup, len);
          const simd::VecD dd = simd::sub(simd::loadu(xrow + j),
                                          simd::loadu(y + j));
          const simd::VecD c =
              kSquaredCost ? simd::mul(dd, dd) : simd::abs(dd);
          const simd::VecD val = simd::add(c, best);
          simd::storeu(dk + j, val);
          simd::storeu(lk + j, simd::add(len, one));
          acc = simd::min(acc, val);
        }
        cur_min = std::min(cur_min, simd::horizontal_min(acc));
      }
      for (; j <= jhi; ++j) {
        double best = dk2[j - 1];  // diag
        double len = lk2[j - 1];
        if (dk1[j - 1] < best) {  // left
          best = dk1[j - 1];
          len = lk1[j - 1];
        }
        if (dk1[j] < best) {  // up
          best = dk1[j];
          len = lk1[j];
        }
        const double dd = xrow[j] - y[j];
        const double c = kSquaredCost ? dd * dd : std::fabs(dd);
        const double val = c + best;
        dk[j] = val;
        lk[j] = len + 1.0;
        cur_min = std::min(cur_min, val);
      }
    }
    // Guard slots: parents one past the active range must read as +inf.
    dk[jlo - 1] = kInf;
    dk[jhi + 1] = kInf;

    // Early abandoning: each cell of diagonal k+1 has all its parents on
    // diagonals k and k-1, and local costs are non-negative, so once the
    // minima of two consecutive diagonals both exceed the ceiling, every
    // later diagonal — including the final corner — does too.
    if (k > 0 && std::min(prev_min, cur_min) > abandon_above) {
      workspace.stats.cells += cells;
      return {.distance = kInf, .path_cells = 0, .abandoned = true};
    }
    prev_min = cur_min;
  }
  workspace.stats.cells += cells;
  const std::ptrdiff_t last = 2 * (n - 1);
  return {.distance = d[last % 3][n - 1],
          .path_cells = static_cast<std::uint64_t>(l[last % 3][n - 1]),
          .abandoned = false};
}

// Row-major sweep for narrow bands, where anti-diagonals hold at most
// 2w + 1 cells and the wavefront is mostly loop overhead. Same parent
// expressions, same evaluation order, same strict-< tie-breaks (diag,
// left, up) as the wavefront — hence bit-identical in distance and path
// length to dtw_banded()/dtw(). Early abandoning here needs only ONE row
// above the ceiling: every monotone path to the final corner passes
// through some cell of each row i, its prefix cost there is at least the
// DP value of that cell (the minimum over all prefixes), hence at least
// the row minimum, and local costs are non-negative.
template <bool kSquaredCost>
BandedDistance row_sweep(const double* x, const double* y, std::ptrdiff_t n,
                         std::ptrdiff_t w, double abandon_above,
                         DtwWorkspace& workspace) {
  const std::size_t needed = static_cast<std::size_t>(n) + 2;
  ++workspace.stats.dp_solves;
  if (needed > workspace.wave_d[0].capacity()) ++workspace.stats.grows;
  workspace.wave_d[0].assign(needed, kInf);
  workspace.wave_d[1].assign(needed, kInf);
  workspace.wave_l[0].assign(needed, 0.0);
  workspace.wave_l[1].assign(needed, 0.0);
  double* prev = workspace.wave_d[0].data() + 1;
  double* cur = workspace.wave_d[1].data() + 1;
  double* lprev = workspace.wave_l[0].data() + 1;
  double* lcur = workspace.wave_l[1].data() + 1;
  // Virtual row -1: all +inf except the diagonal parent of (0,0), which
  // seeds the base cell with accumulated cost 0 and path length 0.
  prev[-1] = 0.0;

  std::uint64_t cells = 0;
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t jlo = std::max<std::ptrdiff_t>(0, i - w);
    const std::ptrdiff_t jhi = std::min(n - 1, i + w);
    cells += static_cast<std::uint64_t>(jhi - jlo + 1);
    // The left parent of this row's first cell lives in the slot being
    // recycled from row i - 1. Once the band's left edge moves (i > w),
    // jlo - 1 falls INSIDE row i - 1's active range, so that slot holds a
    // stale finite value from two rows back — it must read as +inf.
    cur[jlo - 1] = kInf;
    const double xi = x[i];
    double row_min = kInf;
    for (std::ptrdiff_t j = jlo; j <= jhi; ++j) {
      double best = prev[j - 1];  // diag
      double len = lprev[j - 1];
      if (cur[j - 1] < best) {  // left
        best = cur[j - 1];
        len = lcur[j - 1];
      }
      if (prev[j] < best) {  // up
        best = prev[j];
        len = lprev[j];
      }
      const double dd = xi - y[j];
      const double c = kSquaredCost ? dd * dd : std::fabs(dd);
      const double val = c + best;
      cur[j] = val;
      lcur[j] = len + 1.0;
      row_min = std::min(row_min, val);
    }
    // Guard slots: row i + 1 reads at most one slot past this row's active
    // range on either side, and those must read as +inf.
    cur[jlo - 1] = kInf;
    cur[jhi + 1] = kInf;
    if (row_min > abandon_above) {
      workspace.stats.cells += cells;
      return {.distance = kInf, .path_cells = 0, .abandoned = true};
    }
    std::swap(prev, cur);
    std::swap(lprev, lcur);
  }
  workspace.stats.cells += cells;
  return {.distance = prev[n - 1],
          .path_cells = static_cast<std::uint64_t>(lprev[n - 1]),
          .abandoned = false};
}

}  // namespace

BandedDistance banded_dtw_distance(std::span<const double> x,
                                   std::span<const double> y, std::size_t band,
                                   LocalCost cost, double abandon_above,
                                   bool use_simd, DtwWorkspace& workspace) {
  VP_REQUIRE(x.size() == y.size() && !x.empty());
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  // band 0 means unconstrained; a band covering the whole matrix is the
  // same sweep either way.
  std::ptrdiff_t w = static_cast<std::ptrdiff_t>(band);
  if (w == 0 || w > n - 1) w = n - 1;

  // Narrow bands take the row sweep. Dispatch on band geometry only, NOT
  // on use_simd: both traversals are bit-identical in results, but they
  // abandon at different points, and the scalar and vector builds must
  // stay trivially identical in every observable.
  if (2 * w + 1 <= 9 && n > 1) {
    return cost == LocalCost::kSquared
               ? row_sweep<true>(x.data(), y.data(), n, w, abandon_above,
                                 workspace)
               : row_sweep<false>(x.data(), y.data(), n, w, abandon_above,
                                  workspace);
  }

  // Reversed copy of x so every anti-diagonal reads x contiguously.
  std::vector<double>& xr = workspace.zx_rev;
  xr.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xr[i] = x[x.size() - 1 - i];

  const bool vec = use_simd && simd::vectorized();
  if (cost == LocalCost::kSquared) {
    return vec ? wavefront_sweep<true, true>(xr.data(), y.data(), n, w,
                                             abandon_above, workspace)
               : wavefront_sweep<true, false>(xr.data(), y.data(), n, w,
                                              abandon_above, workspace);
  }
  return vec ? wavefront_sweep<false, true>(xr.data(), y.data(), n, w,
                                            abandon_above, workspace)
             : wavefront_sweep<false, false>(xr.data(), y.data(), n, w,
                                             abandon_above, workspace);
}

}  // namespace vp::ts
