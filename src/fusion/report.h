// voiceprint.fusion_bench/v1: the BENCH_fusion.json artefact emitted by
// bench/fusion_quality.cpp — fused vs single-observer vs CPVSAD accuracy
// over an observer-count × attacker-mix sweep.
//
// build_fusion_bench_report and validate_fusion_bench live together so
// the producing bench, the unit tests and tools/check_run_report
// --fusion-bench can never drift on what a well-formed document is. The
// validator enforces, per row:
//   * the fusion conservation law
//       rounds_delivered = rounds_fused + rounds_expired + rounds_pending
//   * trust bounds: every reported trust statistic inside [0, 1] with
//     trust_min <= trust_max
//   * the corroboration claim on multi-observer rows (observers >= 3,
//     both channels defined): fused DR >= single DR and
//     fused FPR <= single FPR, within 1e-9
// Undefined rates (no window had the denominator) are null, never 0.0.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"

namespace vp::fusion {

struct FusionBenchConfigResult {
  std::string label;
  std::size_t observers = 0;
  double density_per_km = 0.0;
  std::size_t attackers = 0;  // malicious source vehicles in the world
  double sim_time_s = 0.0;

  // FusionEngine accounting after finish(); pending is the gauge term
  // (non-zero only if the bench stopped short of closing every epoch).
  std::uint64_t rounds_delivered = 0;
  std::uint64_t rounds_fused = 0;
  std::uint64_t rounds_expired = 0;
  std::uint64_t rounds_pending = 0;
  std::uint64_t epochs_closed = 0;
  std::uint64_t votes_cast = 0;

  // Eq. 12/13 averages per channel; *_samples counts the windows where
  // the rate was defined (empty optional <=> 0 samples).
  std::optional<double> single_dr;
  std::optional<double> single_fpr;
  std::size_t single_dr_samples = 0;
  std::size_t single_fpr_samples = 0;
  std::optional<double> fused_dr;
  std::optional<double> fused_fpr;
  std::size_t fused_dr_samples = 0;
  std::size_t fused_fpr_samples = 0;
  std::optional<double> cpvsad_dr;
  std::optional<double> cpvsad_fpr;

  // End-of-run trust statistics over every scored id (identities and
  // observers pooled); honest_identity_trust_min covers only identities
  // the ground truth marks legitimate.
  double trust_min = 0.0;
  double trust_max = 0.0;
  double honest_identity_trust_min = 0.0;
};

obs::json::Value build_fusion_bench_report(
    const std::string& binary, std::uint64_t seed,
    const std::vector<FusionBenchConfigResult>& configs);

bool validate_fusion_bench(const obs::json::Value& report, std::string* error);

}  // namespace vp::fusion
