#include "fusion/checkpoint.h"

#include <bit>
#include <cstdio>
#include <utility>

#include "common/binio.h"
#include "common/rng.h"

namespace vp::fusion {

namespace {

constexpr std::uint32_t kMagic = 0x55465056u;  // "VPFU" little-endian
constexpr std::uint32_t kVersion = 1;

bool fail(std::string* error, std::string reason) {
  if (error != nullptr) *error = std::move(reason);
  return false;
}

void encode_stats(ByteWriter& w, const FusionEngine::Stats& s) {
  w.put_u64(s.rounds_delivered);
  w.put_u64(s.rounds_fused);
  w.put_u64(s.rounds_expired);
  w.put_u64(s.epochs_closed);
  w.put_u64(s.votes_cast);
  w.put_u64(s.verdicts_fused);
  w.put_u64(s.accusations_fused);
}

bool decode_stats(ByteReader& r, FusionEngine::Stats& s) {
  return r.get_u64(s.rounds_delivered) && r.get_u64(s.rounds_fused) &&
         r.get_u64(s.rounds_expired) && r.get_u64(s.epochs_closed) &&
         r.get_u64(s.votes_cast) && r.get_u64(s.verdicts_fused) &&
         r.get_u64(s.accusations_fused);
}

void encode_trust(ByteWriter& w, const std::map<std::uint64_t, double>& t) {
  w.put_u64(t.size());
  for (const auto& [id, score] : t) {
    w.put_u64(id);
    w.put_f64(score);
  }
}

bool decode_trust(ByteReader& r, const char* section,
                  std::map<std::uint64_t, double>& t, std::string* error) {
  std::uint64_t count = 0;
  if (!r.get_u64(count)) {
    return fail(error, std::string("fusion checkpoint: truncated ") + section);
  }
  if (count > r.remaining() / (2 * 8)) {
    return fail(error, std::string("fusion checkpoint: ") + section +
                           " count exceeds payload");
  }
  bool first = true;
  std::uint64_t previous = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    double score = 0.0;
    if (!r.get_u64(id) || !r.get_f64(score)) {
      return fail(error,
                  std::string("fusion checkpoint: truncated ") + section);
    }
    if (!first && id <= previous) {
      return fail(error, std::string("fusion checkpoint: ") + section +
                             " ids not ascending");
    }
    first = false;
    previous = id;
    t.emplace(id, score);
  }
  return true;
}

}  // namespace

std::uint64_t fusion_config_hash(const FusionConfig& config) {
  std::uint64_t h = hash64("vp.fusion.config/v1");
  h = mix64(h, std::bit_cast<std::uint64_t>(config.epoch_period_s));
  h = mix64(h, std::bit_cast<std::uint64_t>(config.watermark_lateness_s));
  h = mix64(h, std::bit_cast<std::uint64_t>(config.quorum_fraction));
  h = mix64(h, std::bit_cast<std::uint64_t>(config.exoneration_weight));
  h = mix64(h, static_cast<std::uint64_t>(config.min_corroboration));
  h = mix64(h, static_cast<std::uint64_t>(config.weight_by_trust ? 1 : 0));
  h = mix64(h, static_cast<std::uint64_t>(config.weight_by_density ? 1 : 0));
  h = mix64(h, std::bit_cast<std::uint64_t>(config.density_reference_per_km));
  h = mix64(h, std::bit_cast<std::uint64_t>(config.trust.initial));
  h = mix64(h, std::bit_cast<std::uint64_t>(config.trust.accusation_decay));
  h = mix64(h,
            std::bit_cast<std::uint64_t>(config.trust.exoneration_recovery));
  h = mix64(h, std::bit_cast<std::uint64_t>(config.trust.badmouth_penalty));
  h = mix64(h,
            std::bit_cast<std::uint64_t>(config.trust.corroboration_reward));
  h = mix64(h, std::bit_cast<std::uint64_t>(config.trust.floor));
  h = mix64(h, std::bit_cast<std::uint64_t>(config.trust.ceiling));
  return h;
}

std::vector<std::uint8_t> encode_checkpoint(
    const FusionCheckpoint& checkpoint) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w(bytes);
  w.put_u32(kMagic);
  w.put_u32(kVersion);
  w.put_u64(checkpoint.config_hash);
  w.put_f64(checkpoint.watermark);
  w.put_i64(checkpoint.closed_before);
  encode_stats(w, checkpoint.stats);
  encode_trust(w, checkpoint.identity_trust);
  encode_trust(w, checkpoint.observer_trust);
  w.put_u64(checkpoint.epochs.size());
  for (const EpochCheckpoint& ec : checkpoint.epochs) {
    w.put_i64(ec.index);
    w.put_u64(ec.rounds);
    w.put_u64(ec.max_round_id);
    w.put_u64(ec.votes.size());
    for (const VoteCheckpoint& vc : ec.votes) {
      w.put_u64(vc.identity);
      w.put_u64(vc.observer);
      w.put_u8(vc.accused ? 1 : 0);
      w.put_f64(vc.density_per_km);
      w.put_f64(vc.time_s);
    }
  }
  w.put_u64(fnv1a64(bytes));
  return bytes;
}

bool decode_checkpoint(std::span<const std::uint8_t> bytes,
                       FusionCheckpoint* out, std::string* error) {
  if (bytes.size() < 8 + 8) {
    return fail(error, "fusion checkpoint: truncated header");
  }
  std::uint64_t stored_sum = 0;
  for (int i = 7; i >= 0; --i) {
    stored_sum = (stored_sum << 8) |
                 bytes[bytes.size() - 8 + static_cast<std::size_t>(i)];
  }
  const auto body = bytes.subspan(0, bytes.size() - 8);
  if (fnv1a64(body) != stored_sum) {
    return fail(error, "fusion checkpoint: checksum mismatch");
  }

  ByteReader r(body);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!r.get_u32(magic) || magic != kMagic) {
    return fail(error, "fusion checkpoint: bad magic (not VPFU)");
  }
  if (!r.get_u32(version) || version != kVersion) {
    return fail(error, "fusion checkpoint: unsupported version");
  }

  FusionCheckpoint cp;
  if (!r.get_u64(cp.config_hash) || !r.get_f64(cp.watermark) ||
      !r.get_i64(cp.closed_before) || !decode_stats(r, cp.stats)) {
    return fail(error, "fusion checkpoint: truncated engine fields");
  }
  if (!decode_trust(r, "identity trust", cp.identity_trust, error) ||
      !decode_trust(r, "observer trust", cp.observer_trust, error)) {
    return false;
  }

  std::uint64_t epoch_count = 0;
  if (!r.get_u64(epoch_count)) {
    return fail(error, "fusion checkpoint: truncated epoch count");
  }
  if (epoch_count > r.remaining() / (4 * 8)) {
    return fail(error, "fusion checkpoint: epoch count exceeds payload");
  }
  cp.epochs.reserve(static_cast<std::size_t>(epoch_count));
  bool first_epoch = true;
  std::int64_t previous_index = 0;
  for (std::uint64_t e = 0; e < epoch_count; ++e) {
    EpochCheckpoint ec;
    std::uint64_t vote_count = 0;
    if (!r.get_i64(ec.index) || !r.get_u64(ec.rounds) ||
        !r.get_u64(ec.max_round_id) || !r.get_u64(vote_count)) {
      return fail(error, "fusion checkpoint: truncated epoch header");
    }
    if (!first_epoch && ec.index <= previous_index) {
      return fail(error, "fusion checkpoint: epoch indices not ascending");
    }
    if (ec.index < cp.closed_before) {
      return fail(error, "fusion checkpoint: open epoch behind the closed "
                         "frontier");
    }
    first_epoch = false;
    previous_index = ec.index;
    if (vote_count > r.remaining() / (2 * 8 + 1 + 2 * 8)) {
      return fail(error, "fusion checkpoint: vote count exceeds payload");
    }
    ec.votes.reserve(static_cast<std::size_t>(vote_count));
    bool first_vote = true;
    std::uint64_t prev_identity = 0;
    std::uint64_t prev_observer = 0;
    for (std::uint64_t v = 0; v < vote_count; ++v) {
      VoteCheckpoint vc;
      std::uint8_t accused = 0;
      if (!r.get_u64(vc.identity) || !r.get_u64(vc.observer) ||
          !r.get_u8(accused) || !r.get_f64(vc.density_per_km) ||
          !r.get_f64(vc.time_s)) {
        return fail(error, "fusion checkpoint: truncated vote");
      }
      if (accused > 1) {
        return fail(error, "fusion checkpoint: non-boolean accused flag");
      }
      if (vc.identity > 0xffffffffu) {
        return fail(error, "fusion checkpoint: identity exceeds 32 bits");
      }
      vc.accused = accused == 1;
      if (!first_vote &&
          (vc.identity < prev_identity ||
           (vc.identity == prev_identity && vc.observer <= prev_observer))) {
        return fail(error,
                    "fusion checkpoint: votes not (identity, observer) "
                    "ascending");
      }
      first_vote = false;
      prev_identity = vc.identity;
      prev_observer = vc.observer;
      ec.votes.push_back(vc);
    }
    cp.epochs.push_back(std::move(ec));
  }
  if (r.remaining() != 0) {
    return fail(error, "fusion checkpoint: trailing bytes");
  }
  if (out != nullptr) *out = std::move(cp);
  return true;
}

bool save_checkpoint(const FusionCheckpoint& checkpoint,
                     const std::string& path, std::string* error) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(checkpoint);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return fail(error, "fusion checkpoint: cannot open " + tmp);
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  if (std::fclose(f) != 0 || written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return fail(error, "fusion checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail(error,
                "fusion checkpoint: cannot rename " + tmp + " over " + path);
  }
  return true;
}

bool load_checkpoint(const std::string& path, FusionCheckpoint* out,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return fail(error, "fusion checkpoint: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return fail(error, "fusion checkpoint: read error on " + path);
  return decode_checkpoint(bytes, out, error);
}

}  // namespace vp::fusion
