// Versioned checkpoint/restore for fusion::FusionEngine (DESIGN.md §13).
//
// A FusionCheckpoint captures everything the engine needs to resume
// mid-epoch: the stream-clock watermark, the closed-epoch frontier, the
// Stats, both trust stores (identity and observer scores, ascending id),
// and every open epoch's buffered votes. Taken by
// FusionEngine::checkpoint() — callable at any instant, no quiescence
// required — and restored by the FusionEngine(config, checkpoint)
// constructor, after which the restored engine's fused verdicts and trust
// trajectories are bit-identical to the uninterrupted run
// (tests/test_fusion.cpp kill/restore parity).
//
// Wire format ("VPFU", version 1) mirrors the engine and service codecs:
// fixed-order little-endian fields, doubles as IEEE-754 bit patterns,
// strictly ascending ids within each section, and a trailing FNV-1a
// checksum verified before any field is parsed. decode rejects malformed
// input with a one-line reason; save is crash-safe (tmp + rename).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "fusion/engine.h"

namespace vp::fusion {

// One buffered vote: (identity, observer) within an open epoch.
struct VoteCheckpoint {
  std::uint64_t identity = 0;
  std::uint64_t observer = 0;
  bool accused = false;
  double density_per_km = 0.0;
  double time_s = 0.0;
};

// One open (not yet closed) epoch. Votes are ordered (identity, observer)
// ascending — the engine's own map order.
struct EpochCheckpoint {
  std::int64_t index = 0;
  std::uint64_t rounds = 0;
  std::uint64_t max_round_id = 0;
  std::vector<VoteCheckpoint> votes;
};

struct FusionCheckpoint {
  std::uint64_t config_hash = 0;  // fusion_config_hash(config)
  double watermark = 0.0;
  std::int64_t closed_before = 0;
  FusionEngine::Stats stats;
  std::map<std::uint64_t, double> identity_trust;
  std::map<std::uint64_t, double> observer_trust;
  std::vector<EpochCheckpoint> epochs;  // ascending epoch index
};

// Hash of every FusionConfig field verdicts depend on — all of them; the
// fusion engine has no results-neutral knobs, so a checkpoint only
// restores into an identically-configured engine.
std::uint64_t fusion_config_hash(const FusionConfig& config);

std::vector<std::uint8_t> encode_checkpoint(const FusionCheckpoint& checkpoint);
bool decode_checkpoint(std::span<const std::uint8_t> bytes,
                       FusionCheckpoint* out, std::string* error);

bool save_checkpoint(const FusionCheckpoint& checkpoint,
                     const std::string& path, std::string* error);
bool load_checkpoint(const std::string& path, FusionCheckpoint* out,
                     std::string* error);

}  // namespace vp::fusion
