#include "fusion/engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.h"
#include "fusion/checkpoint.h"
#include "obs/runtime.h"
#include "obs/timer.h"

namespace vp::fusion {

namespace {

// Registry instruments, resolved once (lookup takes a mutex; the delivery
// path must not). Updates are gated on obs::enabled().
struct Sinks {
  obs::Counter* rounds_delivered;
  obs::Counter* rounds_fused;
  obs::Counter* rounds_expired;
  obs::Counter* epochs_closed;
  obs::Counter* votes_cast;
  obs::Counter* verdicts_fused;
  obs::Counter* accusations_fused;
  obs::Gauge* rounds_pending;
  obs::Histogram* epoch_close_ns;
  obs::Histogram* epoch_verdicts;
};

const Sinks& sinks() {
  static const Sinks s = [] {
    obs::MetricsRegistry& r = obs::registry();
    return Sinks{
        .rounds_delivered = &r.counter("fusion.rounds_delivered"),
        .rounds_fused = &r.counter("fusion.rounds_fused"),
        .rounds_expired = &r.counter("fusion.rounds_expired"),
        .epochs_closed = &r.counter("fusion.epochs_closed"),
        .votes_cast = &r.counter("fusion.votes_cast"),
        .verdicts_fused = &r.counter("fusion.verdicts_fused"),
        .accusations_fused = &r.counter("fusion.accusations_fused"),
        .rounds_pending = &r.gauge("fusion.rounds_pending"),
        .epoch_close_ns = &r.histogram("fusion.epoch_close_ns"),
        .epoch_verdicts = &r.histogram("fusion.epoch_verdicts",
                                       obs::Histogram::default_count_bounds()),
    };
  }();
  return s;
}

void set_pending_gauge(std::uint64_t pending) {
  if (!obs::enabled()) return;
  sinks().rounds_pending->set(static_cast<double>(pending));
}

}  // namespace

double TrustStore::get(std::uint64_t id) const {
  const auto it = scores_.find(id);
  return it == scores_.end() ? config_.initial : it->second;
}

void TrustStore::adjust(std::uint64_t id, double delta) {
  double& score = scores_.try_emplace(id, config_.initial).first->second;
  score = std::clamp(score + delta, config_.floor, config_.ceiling);
}

FusionEngine::FusionEngine(FusionConfig config)
    : config_(std::move(config)),
      identity_trust_(config_.trust),
      observer_trust_(config_.trust) {
  VP_REQUIRE(config_.epoch_period_s > 0.0);
  VP_REQUIRE(config_.watermark_lateness_s >= 0.0);
  VP_REQUIRE(config_.quorum_fraction >= 0.0 && config_.quorum_fraction <= 1.0);
  VP_REQUIRE(config_.exoneration_weight > 0.0 &&
             config_.exoneration_weight <= 1.0);
  VP_REQUIRE(config_.min_corroboration >= 1);
  VP_REQUIRE(config_.density_reference_per_km > 0.0);
  VP_REQUIRE(config_.trust.floor >= 0.0 && config_.trust.ceiling <= 1.0);
  VP_REQUIRE(config_.trust.floor <= config_.trust.ceiling);
}

FusionEngine::FusionEngine(FusionConfig config,
                           const FusionCheckpoint& checkpoint)
    : FusionEngine(std::move(config)) {
  VP_REQUIRE(checkpoint.config_hash == fusion_config_hash(config_));
  stats_ = checkpoint.stats;
  watermark_ = checkpoint.watermark;
  closed_before_ = checkpoint.closed_before;
  identity_trust_.restore(checkpoint.identity_trust);
  observer_trust_.restore(checkpoint.observer_trust);
  pending_rounds_ = 0;
  for (const EpochCheckpoint& ec : checkpoint.epochs) {
    OpenEpoch& epoch = epochs_[ec.index];
    epoch.rounds = ec.rounds;
    epoch.max_round_id = ec.max_round_id;
    pending_rounds_ += ec.rounds;
    for (const VoteCheckpoint& vc : ec.votes) {
      Vote& vote =
          epoch.votes[static_cast<IdentityId>(vc.identity)][vc.observer];
      vote.accused = vc.accused;
      vote.density_per_km = vc.density_per_km;
      vote.time_s = vc.time_s;
    }
  }
  set_pending_gauge(pending_rounds_);
}

FusionCheckpoint FusionEngine::checkpoint() const {
  FusionCheckpoint cp;
  cp.config_hash = fusion_config_hash(config_);
  cp.watermark = watermark_;
  cp.closed_before = closed_before_;
  cp.stats = stats_;
  cp.identity_trust = identity_trust_.scores();
  cp.observer_trust = observer_trust_.scores();
  cp.epochs.reserve(epochs_.size());
  for (const auto& [index, epoch] : epochs_) {
    EpochCheckpoint ec;
    ec.index = index;
    ec.rounds = epoch.rounds;
    ec.max_round_id = epoch.max_round_id;
    for (const auto& [identity, votes] : epoch.votes) {
      for (const auto& [observer, vote] : votes) {
        ec.votes.push_back(VoteCheckpoint{
            .identity = identity,
            .observer = observer,
            .accused = vote.accused,
            .density_per_km = vote.density_per_km,
            .time_s = vote.time_s});
      }
    }
    cp.epochs.push_back(std::move(ec));
  }
  return cp;
}

std::int64_t FusionEngine::epoch_of(double time_s) const {
  return static_cast<std::int64_t>(
      std::floor(time_s / config_.epoch_period_s));
}

void FusionEngine::observe(const service::SessionRound& round) {
  ++stats_.rounds_delivered;
  if (obs::enabled()) sinks().rounds_delivered->add(1);

  const std::int64_t index = epoch_of(round.round.time_s);
  if (index < closed_before_) {
    // The epoch already closed and its verdicts are out; counting the
    // straggler keeps the conservation law exact.
    ++stats_.rounds_expired;
    if (obs::enabled()) sinks().rounds_expired->add(1);
    return;
  }

  OpenEpoch& epoch = epochs_[index];
  ++epoch.rounds;
  ++pending_rounds_;
  epoch.max_round_id = std::max(epoch.max_round_id, round.round.round_id);

  // The round's electorate: every identity the observer compared (the
  // pair endpoints) plus the suspects themselves — accused when flagged,
  // exonerated when heard clean. `identities_heard` is only a count, so
  // the pair list is the authoritative roster.
  std::map<IdentityId, bool> ballots;
  for (const core::PairDistance& pair : round.round.pairs) {
    ballots.emplace(pair.a, false);
    ballots.emplace(pair.b, false);
  }
  for (IdentityId suspect : round.round.suspects) {
    ballots.insert_or_assign(suspect, true);
  }

  std::uint64_t new_votes = 0;
  for (const auto& [identity, accused] : ballots) {
    const auto [it, inserted] =
        epoch.votes[identity].try_emplace(round.session);
    Vote& vote = it->second;
    if (inserted) ++new_votes;
    // Several rounds from one session can land in one epoch (engine
    // round period shorter than the fusion epoch): the newest round's
    // density wins, an accusation from any of them sticks.
    if (inserted || round.round.time_s >= vote.time_s) {
      vote.time_s = round.round.time_s;
      vote.density_per_km = round.round.density_per_km;
    }
    vote.accused = vote.accused || accused;
  }
  stats_.votes_cast += new_votes;
  if (obs::enabled() && new_votes > 0) sinks().votes_cast->add(new_votes);
  set_pending_gauge(pending_rounds_);
}

void FusionEngine::advance(double time_s) {
  watermark_ = std::max(watermark_, time_s);
  // Epoch e spans [e·P, (e+1)·P); it closes once the watermark passes its
  // end plus the lateness slack.
  const double cutoff = watermark_ - config_.watermark_lateness_s;
  const std::int64_t last =
      static_cast<std::int64_t>(std::floor(cutoff / config_.epoch_period_s)) -
      1;
  close_epochs_through(last);
}

void FusionEngine::finish() {
  if (!epochs_.empty()) close_epochs_through(epochs_.rbegin()->first);
}

void FusionEngine::close_epochs_through(std::int64_t last_index) {
  while (!epochs_.empty() && epochs_.begin()->first <= last_index) {
    const auto it = epochs_.begin();
    const std::int64_t index = it->first;
    OpenEpoch epoch = std::move(it->second);
    epochs_.erase(it);
    closed_before_ = std::max(closed_before_, index + 1);
    close_epoch(index, epoch);
  }
  closed_before_ = std::max(closed_before_, last_index + 1);
}

void FusionEngine::close_epoch(std::int64_t index, const OpenEpoch& epoch) {
  const bool instrumented = obs::enabled();
  obs::ScopedTimer close_timer =
      instrumented
          ? obs::ScopedTimer(
                sinks().epoch_close_ns, obs::trace(),
                {.phase = "fusion.epoch_close",
                 .window = index,
                 .pairs = static_cast<std::int64_t>(epoch.votes.size()),
                 .round = static_cast<std::int64_t>(epoch.max_round_id)})
          : obs::ScopedTimer();

  FusedEpoch out;
  out.index = index;
  out.start_s = static_cast<double>(index) * config_.epoch_period_s;
  out.end_s = static_cast<double>(index + 1) * config_.epoch_period_s;
  out.rounds = epoch.rounds;
  out.max_round_id = epoch.max_round_id;
  out.verdicts.reserve(epoch.votes.size());

  // Phase 1 — verdicts. Weights read the *epoch-start* trust scores
  // (phase 2 has not run yet) and sum in sorted (identity, observer)
  // order, so the totals are bit-identical regardless of the order the
  // service delivered the rounds in.
  for (const auto& [identity, votes] : epoch.votes) {
    FusedVerdict verdict;
    verdict.id = identity;
    for (const auto& [observer, vote] : votes) {
      double weight = 1.0;
      if (config_.weight_by_trust) weight *= observer_trust_.get(observer);
      if (config_.weight_by_density) {
        weight *= 1.0 + vote.density_per_km / config_.density_reference_per_km;
      }
      if (!vote.accused) weight *= config_.exoneration_weight;
      verdict.total_weight += weight;
      ++verdict.voters;
      if (vote.accused) {
        verdict.accuse_weight += weight;
        ++verdict.accusations;
      }
    }
    // Quorum, strict: an exact tie exonerates. A lone voter's verdict
    // stands as-is — with nobody to corroborate, fusion degrades to the
    // paper's single-observer behaviour instead of muting the detector.
    // Multi-voter ballots additionally need min_corroboration distinct
    // accusers: a near-tie a dense lone accuser would win on weight alone
    // is still one observer's uncorroborated claim.
    verdict.accused =
        verdict.voters == 1
            ? votes.begin()->second.accused
            : verdict.accusations >= config_.min_corroboration &&
                  verdict.accuse_weight >
                      config_.quorum_fraction * verdict.total_weight;
    out.verdicts.push_back(verdict);
  }

  // Phase 2 — trust, in the same sorted order. Identity scores follow
  // the fused verdict; observer scores follow whether the observer voted
  // with it (badmouthing against the quorum is what decays a colluding
  // accuser's future vote weight).
  std::size_t verdict_index = 0;
  std::uint64_t accused_count = 0;
  for (const auto& [identity, votes] : epoch.votes) {
    const FusedVerdict& verdict = out.verdicts[verdict_index++];
    if (verdict.accused) {
      ++accused_count;
      identity_trust_.adjust(identity, -config_.trust.accusation_decay);
    } else {
      identity_trust_.adjust(identity, config_.trust.exoneration_recovery);
    }
    for (const auto& [observer, vote] : votes) {
      if (!vote.accused) continue;
      observer_trust_.adjust(observer,
                             verdict.accused
                                 ? config_.trust.corroboration_reward
                                 : -config_.trust.badmouth_penalty);
    }
  }

  ++stats_.epochs_closed;
  stats_.rounds_fused += epoch.rounds;
  stats_.verdicts_fused += out.verdicts.size();
  stats_.accusations_fused += accused_count;
  pending_rounds_ -= epoch.rounds;
  if (instrumented) {
    sinks().epochs_closed->add(1);
    sinks().rounds_fused->add(epoch.rounds);
    sinks().verdicts_fused->add(out.verdicts.size());
    if (accused_count > 0) sinks().accusations_fused->add(accused_count);
    sinks().epoch_verdicts->record(static_cast<double>(out.verdicts.size()));
  }
  set_pending_gauge(pending_rounds_);
  close_timer.stop();

  if (callback_) callback_(out);
}

}  // namespace vp::fusion
