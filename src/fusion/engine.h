// Cross-observer corroboration and trust fusion (DESIGN.md §13).
//
// Voiceprint's detector is strictly per-observer: Section IV compares only
// the RSSI series one vehicle heard itself, so a suspect pair flagged by
// one observer is never corroborated by the neighbours that heard the same
// beacons. The FusionEngine closes that gap. It subscribes to
// service::DetectionService round results (add_round_listener) and
// aggregates per-identity verdicts across observers into fusion epochs:
//
//   * Voting — each delivered round casts one vote per identity the
//     observer compared that epoch: "accused" if the identity is in the
//     round's suspect set, "exonerated" if it was heard and compared but
//     not flagged. Votes are weighted by the observer's current trust
//     score and by its Eq. 9 neighbour density (a denser observer heard
//     more corroborating traffic), and fused by quorum: an identity is
//     accused when the accusing weight strictly exceeds
//     quorum_fraction × total weight. An exact tie exonerates; a lone
//     voter's verdict stands unweighted (single-observer fallback — the
//     paper's behaviour).
//   * Epoch close — epochs are fixed windows of the *stream* clock
//     (never wall clock): epoch k covers [k·P, (k+1)·P). The driver
//     advances a watermark with the same stream time it feeds the
//     service; an epoch closes when the watermark passes its end (plus a
//     lateness slack). Rounds delivered for an already-closed epoch are
//     counted expired, never silently dropped:
//       rounds_delivered = rounds_fused + rounds_expired + pending
//     is a conservation law checked by the HealthMonitor and the bench
//     validators. Votes accumulate in sorted maps and every weight sum
//     runs in sorted (identity, observer) key order at close, so fused
//     verdicts are bit-identical at every service shard/thread count even
//     though delivery interleaves differently.
//   * Trust — a bounded per-identity score in [0, 1] (TrustStore),
//     evolved only at epoch close: a corroborated accusation decays the
//     accused identity's trust, exoneration recovers it. Observers are
//     scored too: accusing against the fused verdict (badmouthing) costs
//     trust — and with it future vote weight — which is what blunts the
//     collusion scenario in bench/chaos_detection; corroborated accusers
//     earn a little back. All scores serialise into the VPFU checkpoint
//     (fusion/checkpoint.h) so kill/restore parity holds mid-epoch.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "service/service.h"

namespace vp::fusion {

struct FusionCheckpoint;  // fusion/checkpoint.h

// Trust dynamics, applied at epoch close only (never mid-epoch, so the
// weights an epoch's votes carry cannot depend on delivery order).
struct TrustConfig {
  double initial = 0.5;                // score for a first-seen id
  double accusation_decay = 0.15;      // fused accusation: accused -= this
  double exoneration_recovery = 0.05;  // heard, not accused: accused += this
  double badmouth_penalty = 0.10;      // accuser against fused verdict
  double corroboration_reward = 0.02;  // accuser with the fused verdict
  // Hard bounds; every update clamps into [floor, ceiling] ⊆ [0, 1].
  double floor = 0.0;
  double ceiling = 1.0;
};

struct FusionConfig {
  // Epoch width on the stream clock; normally the engines' round period
  // so each observer votes once per epoch.
  double epoch_period_s = 20.0;
  // Extra stream time past an epoch's end before it closes, for rounds
  // that are prepared late (a session whose clock stalls delivers its
  // round only when a later beacon arrives).
  double watermark_lateness_s = 0.0;
  // An identity is accused when accuse_weight > quorum_fraction × total
  // weight (strict: an exact tie exonerates).
  double quorum_fraction = 0.5;
  // Multiplier on exonerating votes, in (0, 1]. An accusation is specific
  // evidence (the observer saw two near-identical RSSI series); an
  // exoneration is only absence of evidence — the observer may never have
  // heard the accused identity's Sybil twin at all — so it votes with a
  // fraction of an accusation's weight. With equal voter weights and k
  // accusers out of n, the identity is accused iff k/(n−k) > this: 0.5
  // lets a lone accuser win a 2-voter ballot but makes it lose 1-of-3 and
  // 1-of-4 (one coincidental DTW match cannot out-vote a corroborating
  // majority), while 2-of-4 still accuses. 1.0 makes the vote symmetric
  // (what the tie-break tests use).
  double exoneration_weight = 0.5;
  // Minimum distinct accusers for a multi-voter ballot to fuse as
  // accused, on top of the weight quorum. Lone-voter ballots are exempt
  // (single-observer fallback). This is the orthogonal guard the weight
  // ratio cannot express: a coincidental DTW match is one observer's
  // mistake and stays a lone accusation no matter how its density/trust
  // weight tips a near-tie, while a real Sybil within range of two or
  // more observers collects independent accusations.
  std::uint32_t min_corroboration = 2;
  // Vote weight multipliers. Trust weighting uses the observer's score at
  // the epoch being closed; density weighting scales a vote by
  // 1 + density / density_reference_per_km (Eq. 9 density from the round).
  bool weight_by_trust = true;
  bool weight_by_density = true;
  double density_reference_per_km = 10.0;
  TrustConfig trust;
};

// One identity's fused verdict for one epoch. Weight fields are exact
// sums in sorted observer order — bit-comparable across runs.
struct FusedVerdict {
  IdentityId id = 0;
  bool accused = false;
  double accuse_weight = 0.0;
  double total_weight = 0.0;
  std::uint32_t voters = 0;       // observers that compared this identity
  std::uint32_t accusations = 0;  // of which accused it
};

// A closed fusion epoch, delivered to the epoch callback in index order.
struct FusedEpoch {
  std::int64_t index = 0;  // covers [index·P, (index+1)·P)
  double start_s = 0.0;
  double end_s = 0.0;
  std::uint64_t rounds = 0;         // rounds fused into this epoch
  std::uint64_t max_round_id = 0;   // newest contributing round (tracing)
  std::vector<FusedVerdict> verdicts;  // ascending identity id
};

// Bounded per-id trust scores. Plain sorted map so snapshots, checkpoint
// layout and update order are deterministic.
class TrustStore {
 public:
  explicit TrustStore(const TrustConfig& config) : config_(config) {}

  // Current score, or the configured initial for an unseen id.
  double get(std::uint64_t id) const;
  // Applies a delta and clamps into [floor, ceiling].
  void adjust(std::uint64_t id, double delta);

  const std::map<std::uint64_t, double>& scores() const { return scores_; }
  void restore(std::map<std::uint64_t, double> scores) {
    scores_ = std::move(scores);
  }

 private:
  TrustConfig config_;
  std::map<std::uint64_t, double> scores_;
};

class FusionEngine {
 public:
  // Plain counters mirroring the fusion.* metrics, always maintained
  // (registry copies are gated on obs::enabled()).
  struct Stats {
    std::uint64_t rounds_delivered = 0;
    std::uint64_t rounds_fused = 0;    // credited when their epoch closes
    std::uint64_t rounds_expired = 0;  // arrived after their epoch closed
    std::uint64_t epochs_closed = 0;
    std::uint64_t votes_cast = 0;      // (identity, observer) pairs recorded
    std::uint64_t verdicts_fused = 0;
    std::uint64_t accusations_fused = 0;
  };

  explicit FusionEngine(FusionConfig config);

  // Restores a checkpointed engine (open epochs, trust scores, stats).
  // `config` must hash-match the checkpoint's (VP_REQUIRE otherwise).
  FusionEngine(FusionConfig config, const FusionCheckpoint& checkpoint);

  // Captures the complete fusion state: open epochs with their buffered
  // votes, both trust stores, the watermark and Stats. Callable at any
  // point — mid-epoch kill/restore is the case it exists for.
  FusionCheckpoint checkpoint() const;

  // Buffers one delivered round's votes. Wire it to the service with
  //   service.add_round_listener([&](const service::SessionRound& r) {
  //     fusion.observe(r); });
  // Never closes an epoch — delivery order within a pump depends on the
  // shard layout, so epoch closes only happen in advance()/finish().
  void observe(const service::SessionRound& round);

  // Advances the stream-clock watermark and closes every epoch whose
  // end + watermark_lateness_s <= time_s, invoking the epoch callback in
  // index order. Call it from the ingest loop with the same stream time
  // the service sees; never call it with wall-clock time.
  void advance(double time_s);

  // Closes every open epoch regardless of the watermark (end of trace).
  void finish();

  void set_epoch_callback(std::function<void(const FusedEpoch&)> callback) {
    callback_ = std::move(callback);
  }

  const Stats& stats() const { return stats_; }
  const FusionConfig& config() const { return config_; }
  double watermark() const { return watermark_; }
  // Rounds buffered in epochs that have not closed yet; the gauge term of
  // the fusion conservation law.
  std::uint64_t rounds_pending() const { return pending_rounds_; }

  // Identity trust (what the accusations decay) and observer trust (what
  // scales vote weight). Separate stores: session ids and identity ids
  // are different namespaces that may collide numerically.
  const TrustStore& identity_trust() const { return identity_trust_; }
  const TrustStore& observer_trust() const { return observer_trust_; }

 private:
  struct Vote {
    bool accused = false;
    double density_per_km = 0.0;
    double time_s = 0.0;  // newest round that touched this vote
  };

  // votes: identity → observer → vote. Sorted maps end to end so the
  // close-time weight sums run in one canonical order.
  struct OpenEpoch {
    std::uint64_t rounds = 0;
    std::uint64_t max_round_id = 0;
    std::map<IdentityId, std::map<std::uint64_t, Vote>> votes;
  };

  std::int64_t epoch_of(double time_s) const;
  void close_epochs_through(std::int64_t last_index);
  void close_epoch(std::int64_t index, const OpenEpoch& epoch);

  FusionConfig config_;
  std::function<void(const FusedEpoch&)> callback_;
  std::map<std::int64_t, OpenEpoch> epochs_;  // open epochs by index
  std::int64_t closed_before_ = 0;  // every epoch < this has closed
  double watermark_ = 0.0;
  std::uint64_t pending_rounds_ = 0;
  Stats stats_;
  TrustStore identity_trust_;
  TrustStore observer_trust_;
};

}  // namespace vp::fusion
