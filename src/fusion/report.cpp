#include "fusion/report.h"

#include <cmath>
#include <utility>

#include "common/thread_pool.h"

namespace vp::fusion {

namespace {

using obs::json::Array;
using obs::json::Object;
using obs::json::Value;

constexpr double kRateEpsilon = 1e-9;

Value optional_rate(const std::optional<double>& rate) {
  return rate.has_value() ? Value(*rate) : Value(nullptr);
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool require_number(const Value& object, const char* key,
                    const std::string& where, std::string* error) {
  const Value* v = object.find(key);
  if (v == nullptr || !v->is_number()) {
    return fail(error, where + ": missing or non-numeric \"" + key + "\"");
  }
  return true;
}

// Rates may be null (undefined: no window had the denominator) but must
// be present, and a numeric value must sit inside [0, 1].
bool require_rate(const Value& object, const char* key,
                  const std::string& where, std::string* error) {
  const Value* v = object.find(key);
  if (v == nullptr || (!v->is_number() && !v->is_null())) {
    return fail(error,
                where + ": missing or non-rate (number|null) \"" + key + "\"");
  }
  if (v->is_number() &&
      (v->as_number() < 0.0 || v->as_number() > 1.0 ||
       !std::isfinite(v->as_number()))) {
    return fail(error, where + ": \"" + key + "\" outside [0, 1]");
  }
  return true;
}

}  // namespace

Value build_fusion_bench_report(
    const std::string& binary, std::uint64_t seed,
    const std::vector<FusionBenchConfigResult>& configs) {
  Object doc;
  doc.emplace("schema", Value("voiceprint.fusion_bench/v1"));
  doc.emplace("binary", Value(binary));
  doc.emplace("seed", Value(seed));
  doc.emplace("hardware_threads", Value(hardware_threads()));
  Array rows;
  for (const FusionBenchConfigResult& c : configs) {
    Object row;
    row.emplace("label", Value(c.label));
    row.emplace("observers", Value(c.observers));
    row.emplace("density_per_km", Value(c.density_per_km));
    row.emplace("attackers", Value(c.attackers));
    row.emplace("sim_time_s", Value(c.sim_time_s));
    row.emplace("rounds_delivered", Value(c.rounds_delivered));
    row.emplace("rounds_fused", Value(c.rounds_fused));
    row.emplace("rounds_expired", Value(c.rounds_expired));
    row.emplace("rounds_pending", Value(c.rounds_pending));
    row.emplace("epochs_closed", Value(c.epochs_closed));
    row.emplace("votes_cast", Value(c.votes_cast));
    row.emplace("single_dr", optional_rate(c.single_dr));
    row.emplace("single_fpr", optional_rate(c.single_fpr));
    row.emplace("single_dr_samples", Value(c.single_dr_samples));
    row.emplace("single_fpr_samples", Value(c.single_fpr_samples));
    row.emplace("fused_dr", optional_rate(c.fused_dr));
    row.emplace("fused_fpr", optional_rate(c.fused_fpr));
    row.emplace("fused_dr_samples", Value(c.fused_dr_samples));
    row.emplace("fused_fpr_samples", Value(c.fused_fpr_samples));
    row.emplace("cpvsad_dr", optional_rate(c.cpvsad_dr));
    row.emplace("cpvsad_fpr", optional_rate(c.cpvsad_fpr));
    row.emplace("trust_min", Value(c.trust_min));
    row.emplace("trust_max", Value(c.trust_max));
    row.emplace("honest_identity_trust_min",
                Value(c.honest_identity_trust_min));
    rows.push_back(Value(std::move(row)));
  }
  doc.emplace("configs", Value(std::move(rows)));
  return Value(std::move(doc));
}

bool validate_fusion_bench(const Value& report, std::string* error) {
  if (!report.is_object()) return fail(error, "report is not an object");
  const Value* schema = report.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "voiceprint.fusion_bench/v1") {
    return fail(error, "schema is not \"voiceprint.fusion_bench/v1\"");
  }
  const Value* binary = report.find("binary");
  if (binary == nullptr || !binary->is_string()) {
    return fail(error, "missing or non-string \"binary\"");
  }
  if (!require_number(report, "seed", "report", error)) return false;
  if (!require_number(report, "hardware_threads", "report", error)) {
    return false;
  }
  const Value* configs = report.find("configs");
  if (configs == nullptr || !configs->is_array()) {
    return fail(error, "missing or non-array \"configs\"");
  }
  if (configs->as_array().empty()) return fail(error, "\"configs\" is empty");
  std::size_t index = 0;
  for (const Value& row : configs->as_array()) {
    const std::string where = "configs[" + std::to_string(index++) + "]";
    if (!row.is_object()) return fail(error, where + " is not an object");
    const Value* label = row.find("label");
    if (label == nullptr || !label->is_string()) {
      return fail(error, where + ": missing or non-string \"label\"");
    }
    for (const char* key :
         {"observers", "density_per_km", "attackers", "sim_time_s",
          "rounds_delivered", "rounds_fused", "rounds_expired",
          "rounds_pending", "epochs_closed", "votes_cast",
          "single_dr_samples", "single_fpr_samples", "fused_dr_samples",
          "fused_fpr_samples", "trust_min", "trust_max",
          "honest_identity_trust_min"}) {
      if (!require_number(row, key, where, error)) return false;
    }
    for (const char* key : {"single_dr", "single_fpr", "fused_dr",
                            "fused_fpr", "cpvsad_dr", "cpvsad_fpr"}) {
      if (!require_rate(row, key, where, error)) return false;
    }
    // The fusion conservation law: every delivered round was fused into a
    // closed epoch, expired against one, or still buffered — a harness
    // that loses rounds is rejected here, not discovered in a dashboard.
    if (row.find("rounds_delivered")->as_number() !=
        row.find("rounds_fused")->as_number() +
            row.find("rounds_expired")->as_number() +
            row.find("rounds_pending")->as_number()) {
      return fail(error,
                  where + ": rounds_delivered != fused + expired + pending");
    }
    // Trust scores are bounded by construction; a report outside [0, 1]
    // means the TrustStore clamp broke.
    const double trust_min = row.find("trust_min")->as_number();
    const double trust_max = row.find("trust_max")->as_number();
    const double honest_min =
        row.find("honest_identity_trust_min")->as_number();
    if (trust_min < 0.0 || trust_max > 1.0 || trust_min > trust_max) {
      return fail(error, where + ": trust bounds outside [0, 1]");
    }
    if (honest_min < 0.0 || honest_min > 1.0) {
      return fail(error,
                  where + ": honest_identity_trust_min outside [0, 1]");
    }
    // The corroboration claim (the bench's reason to exist): with enough
    // observers to out-vote a mistake, fusion must not be less sensitive
    // or less precise than the single-observer average from the same run.
    const bool multi_observer = row.find("observers")->as_number() >= 3;
    const Value* single_dr = row.find("single_dr");
    const Value* fused_dr = row.find("fused_dr");
    if (multi_observer && single_dr->is_number() && fused_dr->is_number() &&
        fused_dr->as_number() < single_dr->as_number() - kRateEpsilon) {
      return fail(error, where + ": fused_dr below single_dr");
    }
    const Value* single_fpr = row.find("single_fpr");
    const Value* fused_fpr = row.find("fused_fpr");
    if (multi_observer && single_fpr->is_number() &&
        fused_fpr->is_number() &&
        fused_fpr->as_number() > single_fpr->as_number() + kRateEpsilon) {
      return fail(error, where + ": fused_fpr above single_fpr");
    }
  }
  return true;
}

}  // namespace vp::fusion
