// Versioned checkpoint/restore for service::DetectionService
// (DESIGN.md §10).
//
// A ServiceCheckpoint is the fleet-level analogue of
// stream::EngineCheckpoint: the service Stats, the service clock, and one
// engine checkpoint per live session, taken by
// DetectionService::checkpoint() (queue must be drained — pump() first)
// and restored by the DetectionService(config, checkpoint) constructor.
// Sessions land back on their shards via the same hash the live service
// uses, so the restored fleet's delivery order and results are
// bit-identical to the uninterrupted one at every shard/thread count
// (tests/test_checkpoint.cpp kill/restore parity).
//
// Wire format ("VPSC", version 1) mirrors the engine codec: fixed-order
// little-endian fields, doubles as IEEE-754 bit patterns, each session's
// engine checkpoint embedded as a length-prefixed, self-versioned VPCK
// blob (the engine codec owns that version),
// and a trailing FNV-1a checksum. decode rejects malformed input with a
// one-line reason; save is crash-safe (tmp + rename).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "service/service.h"
#include "stream/checkpoint.h"

namespace vp::service {

struct SessionCheckpoint {
  SessionId id = 0;
  double last_offered_s = 0.0;
  stream::EngineCheckpoint engine;
};

struct ServiceCheckpoint {
  std::uint64_t config_hash = 0;  // service_config_hash(config)
  double service_time = 0.0;
  DetectionService::Stats stats;
  std::vector<SessionCheckpoint> sessions;  // ascending session id
};

// Hash of the service configuration a checkpoint depends on: topology
// (shard count — it fixes session placement and delivery order),
// admission caps, and the per-session engine hash. Excludes `threads`
// (results-neutral) so a checkpoint restores across pool widths.
std::uint64_t service_config_hash(const ServiceConfig& config);

std::vector<std::uint8_t> encode_checkpoint(const ServiceCheckpoint& checkpoint);
bool decode_checkpoint(std::span<const std::uint8_t> bytes,
                       ServiceCheckpoint* out, std::string* error);

bool save_checkpoint(const ServiceCheckpoint& checkpoint,
                     const std::string& path, std::string* error);
bool load_checkpoint(const std::string& path, ServiceCheckpoint* out,
                     std::string* error);

}  // namespace vp::service
