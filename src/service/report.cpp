#include "service/report.h"

#include <utility>

#include "common/thread_pool.h"

namespace vp::service {

namespace {

using obs::json::Array;
using obs::json::Object;
using obs::json::Value;

Value snapshot_json(const obs::HistogramSnapshot& s) {
  Object o;
  o.emplace("count", Value(s.count));
  o.emplace("sum", Value(s.sum));
  o.emplace("min", Value(s.min));
  o.emplace("max", Value(s.max));
  o.emplace("mean", Value(s.mean));
  o.emplace("p50", Value(s.p50));
  o.emplace("p95", Value(s.p95));
  o.emplace("p99", Value(s.p99));
  return Value(std::move(o));
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool require_number(const Value& object, const char* key,
                    const std::string& where, std::string* error) {
  const Value* v = object.find(key);
  if (v == nullptr || !v->is_number()) {
    return fail(error, where + ": missing or non-numeric \"" + key + "\"");
  }
  return true;
}

bool require_snapshot(const Value& row, const char* key,
                      const std::string& where, std::string* error) {
  const Value* snapshot = row.find(key);
  if (snapshot == nullptr || !snapshot->is_object()) {
    return fail(error,
                where + ": missing or non-object \"" + std::string(key) +
                    "\"");
  }
  for (const char* field :
       {"count", "sum", "min", "max", "mean", "p50", "p95", "p99"}) {
    if (!require_number(*snapshot, field, where + "." + key, error)) {
      return false;
    }
  }
  return true;
}

}  // namespace

Value build_service_bench_report(
    const std::string& binary,
    const std::vector<ServiceBenchConfigResult>& configs) {
  Object doc;
  doc.emplace("schema", Value("voiceprint.service_bench/v1"));
  doc.emplace("binary", Value(binary));
  doc.emplace("hardware_threads", Value(hardware_threads()));
  Array rows;
  for (const ServiceBenchConfigResult& c : configs) {
    Object row;
    row.emplace("label", Value(c.label));
    row.emplace("sessions", Value(c.sessions));
    row.emplace("identities_per_session", Value(c.identities_per_session));
    row.emplace("beacon_rate_hz", Value(c.beacon_rate_hz));
    row.emplace("duration_s", Value(c.duration_s));
    row.emplace("shards", Value(c.shards));
    row.emplace("threads", Value(c.threads));
    row.emplace("offered", Value(c.offered));
    row.emplace("ingested", Value(c.ingested));
    row.emplace("shed", Value(c.shed));
    row.emplace("rounds_prepared", Value(c.rounds_prepared));
    row.emplace("rounds_executed", Value(c.rounds_executed));
    row.emplace("rounds_shed", Value(c.rounds_shed));
    row.emplace("ingest_beacons_per_s", Value(c.ingest_beacons_per_s));
    row.emplace("pump_ns", snapshot_json(c.pump_ns));
    row.emplace("round_ns", snapshot_json(c.round_ns));
    rows.push_back(Value(std::move(row)));
  }
  doc.emplace("configs", Value(std::move(rows)));
  return Value(std::move(doc));
}

bool validate_service_bench(const Value& report, std::string* error) {
  if (!report.is_object()) return fail(error, "report is not an object");
  const Value* schema = report.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "voiceprint.service_bench/v1") {
    return fail(error, "schema is not \"voiceprint.service_bench/v1\"");
  }
  const Value* binary = report.find("binary");
  if (binary == nullptr || !binary->is_string()) {
    return fail(error, "missing or non-string \"binary\"");
  }
  if (!require_number(report, "hardware_threads", "report", error)) {
    return false;
  }
  const Value* configs = report.find("configs");
  if (configs == nullptr || !configs->is_array()) {
    return fail(error, "missing or non-array \"configs\"");
  }
  if (configs->as_array().empty()) return fail(error, "\"configs\" is empty");
  std::size_t index = 0;
  for (const Value& row : configs->as_array()) {
    const std::string where = "configs[" + std::to_string(index++) + "]";
    if (!row.is_object()) return fail(error, where + " is not an object");
    const Value* label = row.find("label");
    if (label == nullptr || !label->is_string()) {
      return fail(error, where + ": missing or non-string \"label\"");
    }
    for (const char* key :
         {"sessions", "identities_per_session", "beacon_rate_hz",
          "duration_s", "shards", "threads", "offered", "ingested", "shed",
          "rounds_prepared", "rounds_executed", "rounds_shed",
          "ingest_beacons_per_s"}) {
      if (!require_number(row, key, where, error)) return false;
    }
    // Conservation laws of the admission and scheduling paths: every
    // offered beacon and every prepared round is accounted for — a bench
    // that silently loses work is rejected here, not discovered in a
    // dashboard.
    if (row.find("offered")->as_number() !=
        row.find("ingested")->as_number() + row.find("shed")->as_number()) {
      return fail(error, where + ": offered != ingested + shed");
    }
    if (row.find("rounds_prepared")->as_number() !=
        row.find("rounds_executed")->as_number() +
            row.find("rounds_shed")->as_number()) {
      return fail(error,
                  where + ": rounds_prepared != rounds_executed + rounds_shed");
    }
    if (!require_snapshot(row, "pump_ns", where, error)) return false;
    if (!require_snapshot(row, "round_ns", where, error)) return false;
  }
  return true;
}

}  // namespace vp::service
