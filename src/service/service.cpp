#include "service/service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/runtime.h"
#include "obs/timer.h"
#include "service/checkpoint.h"
#include "stream/checkpoint.h"

namespace vp::service {

namespace {

// Registry instruments, resolved once (lookup takes a mutex; the ingest
// path must not). Updates are gated on obs::enabled().
struct Sinks {
  obs::Counter* offered;
  obs::Counter* ingested;
  obs::Counter* shed_session_cap;
  obs::Counter* shed_rate;
  obs::Counter* shed_identity_cap;
  obs::Counter* shed_out_of_order;
  obs::Counter* shed_invalid;
  obs::Counter* shed_conditioned;
  obs::Counter* sessions_opened;
  obs::Counter* sessions_rejected;
  obs::Counter* sessions_closed;
  obs::Counter* sessions_evicted_idle;
  obs::Counter* rounds_prepared;
  obs::Counter* rounds_executed;
  obs::Counter* rounds_shed_queue_full;
  obs::Counter* rounds_shed_closed;
  obs::Counter* pumps;
  obs::Histogram* pump_ns;
  obs::Histogram* pump_rounds;
  obs::Gauge* sessions_active;
  obs::Gauge* queued_rounds;
};

const Sinks& sinks() {
  static const Sinks s = [] {
    obs::MetricsRegistry& r = obs::registry();
    return Sinks{
        .offered = &r.counter("service.beacons_offered"),
        .ingested = &r.counter("service.beacons_ingested"),
        .shed_session_cap = &r.counter("service.beacons_shed_session_cap"),
        .shed_rate = &r.counter("service.beacons_shed_rate_limited"),
        .shed_identity_cap = &r.counter("service.beacons_shed_identity_cap"),
        .shed_out_of_order = &r.counter("service.beacons_shed_out_of_order"),
        .shed_invalid = &r.counter("service.beacons_shed_invalid"),
        .shed_conditioned = &r.counter("service.beacons_shed_conditioned"),
        .sessions_opened = &r.counter("service.sessions_opened"),
        .sessions_rejected = &r.counter("service.sessions_rejected"),
        .sessions_closed = &r.counter("service.sessions_closed"),
        .sessions_evicted_idle = &r.counter("service.sessions_evicted_idle"),
        .rounds_prepared = &r.counter("service.rounds_prepared"),
        .rounds_executed = &r.counter("service.rounds_executed"),
        .rounds_shed_queue_full = &r.counter("service.rounds_shed_queue_full"),
        .rounds_shed_closed = &r.counter("service.rounds_shed_closed"),
        .pumps = &r.counter("service.pumps"),
        .pump_ns = &r.histogram("service.pump_ns"),
        .pump_rounds = &r.histogram("service.pump_rounds",
                                    obs::Histogram::default_count_bounds()),
        .sessions_active = &r.gauge("service.sessions_active"),
        .queued_rounds = &r.gauge("service.queued_rounds"),
    };
  }();
  return s;
}

}  // namespace

void DetectionService::publish_session_gauges() {
  // Deltas, not absolutes: the registry gauge is shared by every live
  // service in the process (wire ingestion routes across several
  // backends), so each instance maintains only its own contribution.
  // All gauge writes happen on the harness/pump thread, so the
  // read-modify-write needs no atomicity beyond the gauge's own.
  if (!obs::enabled()) return;
  if (sessions_active_ != published_active_) {
    obs::Gauge& g = *sinks().sessions_active;
    g.set(g.value() + static_cast<double>(sessions_active_) -
          static_cast<double>(published_active_));
    published_active_ = sessions_active_;
  }
  if (queued_total_ != published_queued_) {
    obs::Gauge& g = *sinks().queued_rounds;
    g.set(g.value() + static_cast<double>(queued_total_) -
          static_cast<double>(published_queued_));
    published_queued_ = queued_total_;
  }
}

DetectionService::DetectionService(ServiceConfig config)
    : config_(std::move(config)), shards_(std::max<std::size_t>(
                                      config_.shards, 1)) {
  VP_REQUIRE(config_.shards >= 1);
  VP_REQUIRE(config_.max_sessions >= 1);
  // Resolve per-shard latency sinks up front (the restore constructor
  // delegates here, so both paths get them); recording is still gated on
  // obs::enabled() at pump time.
  shard_round_ns_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard_round_ns_.push_back(&obs::registry().histogram(
        "service.shard" + std::to_string(i) + ".round_ns"));
  }
}

DetectionService::DetectionService(ServiceConfig config,
                                   const ServiceCheckpoint& checkpoint)
    : DetectionService(std::move(config)) {
  VP_REQUIRE(checkpoint.config_hash == service_config_hash(config_));
  stats_ = checkpoint.stats;
  service_time_ = checkpoint.service_time;
  for (const SessionCheckpoint& sc : checkpoint.sessions) {
    const std::size_t shard_index = shard_of(sc.id);
    Shard& shard = shards_[shard_index];
    const auto [it, inserted] = shard.sessions.try_emplace(
        sc.id, sc.id, shard_index,
        stream::StreamEngine(config_.engine, sc.engine));
    VP_REQUIRE(inserted);
    Session& s = it->second;
    s.last_offered_s = sc.last_offered_s;
    // Same hook open_session installs; the captured address is stable.
    s.engine.set_round_deferral([this, &s](stream::RoundInput&& input) {
      enqueue_round(s, std::move(input));
    });
    ++sessions_active_;
  }
  // The restored sessions were already published as active by the
  // checkpointed predecessor (same-process failover) or by a previous
  // incarnation whose final gauge contribution persists in the registry
  // (kill/restore). Either way this instance inherits that contribution
  // rather than re-publishing it, so sessions_opened = closed + evicted
  // + active keeps holding across a restore.
  published_active_ = sessions_active_;
}

ServiceCheckpoint DetectionService::checkpoint() const {
  // A queued round's window is already cut out of its engine; saving over
  // it would drop the round on restore. The caller pumps first.
  VP_REQUIRE(queued_total_ == 0);
  ServiceCheckpoint cp;
  cp.config_hash = service_config_hash(config_);
  cp.service_time = service_time_;
  cp.stats = stats_;
  cp.sessions.reserve(sessions_active_);
  for (const Shard& shard : shards_) {
    for (const auto& [id, session] : shard.sessions) {
      cp.sessions.push_back(SessionCheckpoint{
          .id = id,
          .last_offered_s = session.last_offered_s,
          .engine = session.engine.checkpoint()});
    }
  }
  // Deterministic file layout regardless of shard topology.
  std::sort(cp.sessions.begin(), cp.sessions.end(),
            [](const SessionCheckpoint& a, const SessionCheckpoint& b) {
              return a.id < b.id;
            });
  return cp;
}

std::size_t DetectionService::shard_of(SessionId session) const {
  // Hash-sharded ownership: splitmix-mixed so dense session ids (vehicle
  // numbers) still spread evenly across shards.
  return static_cast<std::size_t>(mix64(0x5e551d, session)) % shards_.size();
}

DetectionService::Session* DetectionService::find_session(SessionId session) {
  Shard& shard = shards_[shard_of(session)];
  const auto it = shard.sessions.find(session);
  return it == shard.sessions.end() ? nullptr : &it->second;
}

DetectionService::Session* DetectionService::open_session(SessionId session) {
  if (sessions_active_ >= config_.max_sessions) return nullptr;
  const std::size_t shard_index = shard_of(session);
  Shard& shard = shards_[shard_index];
  const auto [it, inserted] = shard.sessions.try_emplace(
      session, session, shard_index, config_.engine);
  VP_REQUIRE(inserted);
  Session& s = it->second;
  // The engine prepares due rounds inline and hands them here; the
  // detector runs later, on the pump's pool workers. The captured
  // addresses are stable: map nodes never move, and close() drains a
  // session's queue entries before erasing it.
  s.engine.set_round_deferral([this, &s](stream::RoundInput&& input) {
    enqueue_round(s, std::move(input));
  });
  ++sessions_active_;
  ++stats_.sessions_opened;
  if (obs::enabled()) sinks().sessions_opened->add(1);
  publish_session_gauges();
  return &s;
}

bool DetectionService::open(SessionId session) {
  if (find_session(session) != nullptr) return true;
  if (open_session(session) != nullptr) return true;
  ++stats_.sessions_rejected;
  if (obs::enabled()) sinks().sessions_rejected->add(1);
  return false;
}

DetectionService::Admission DetectionService::ingest(SessionId session,
                                                     IdentityId id,
                                                     double time_s,
                                                     double rssi_dbm) {
  const bool instrumented = obs::enabled();
  ++stats_.beacons_offered;
  if (instrumented) sinks().offered->add(1);
  service_time_ = std::max(service_time_, time_s);

  Session* s = find_session(session);
  if (s == nullptr) {
    s = open_session(session);
    if (s == nullptr) {
      ++stats_.beacons_shed_session_cap;
      if (instrumented) sinks().shed_session_cap->add(1);
      return Admission::kShedSessionCap;
    }
  }
  s->last_offered_s = std::max(s->last_offered_s, time_s);

  const stream::StreamEngine::Admission verdict =
      s->engine.ingest(id, time_s, rssi_dbm);
  Admission mapped = Admission::kAccepted;
  switch (verdict) {
    case stream::StreamEngine::Admission::kAccepted:
      ++stats_.beacons_ingested;
      if (instrumented) sinks().ingested->add(1);
      break;
    case stream::StreamEngine::Admission::kShedRateLimited:
      ++stats_.beacons_shed_rate_limited;
      if (instrumented) sinks().shed_rate->add(1);
      mapped = Admission::kShedRateLimited;
      break;
    case stream::StreamEngine::Admission::kShedIdentityCap:
      ++stats_.beacons_shed_identity_cap;
      if (instrumented) sinks().shed_identity_cap->add(1);
      mapped = Admission::kShedIdentityCap;
      break;
    case stream::StreamEngine::Admission::kShedOutOfOrder:
      ++stats_.beacons_shed_out_of_order;
      if (instrumented) sinks().shed_out_of_order->add(1);
      mapped = Admission::kShedOutOfOrder;
      break;
    case stream::StreamEngine::Admission::kShedInvalid:
      ++stats_.beacons_shed_invalid;
      if (instrumented) sinks().shed_invalid->add(1);
      mapped = Admission::kShedInvalid;
      break;
    case stream::StreamEngine::Admission::kShedConditioned:
      ++stats_.beacons_shed_conditioned;
      if (instrumented) sinks().shed_conditioned->add(1);
      mapped = Admission::kShedConditioned;
      break;
  }
  maybe_auto_pump();
  return mapped;
}

void DetectionService::enqueue_round(Session& session,
                                     stream::RoundInput&& input) {
  ++stats_.rounds_prepared;
  if (obs::enabled()) sinks().rounds_prepared->add(1);
  if (queued_total_ >= config_.max_queued_rounds) {
    // Deterministic shedding: the round's window was already cut (the
    // engine has moved on), the detector work is what gets dropped.
    ++stats_.rounds_shed_queue_full;
    if (obs::enabled()) sinks().rounds_shed_queue_full->add(1);
    return;
  }
  PendingRound pending;
  pending.session = &session;
  pending.session_id = session.id;
  pending.input = std::move(input);
  shards_[session.shard].queue.push_back(std::move(pending));
  ++queued_total_;
  publish_session_gauges();
}

void DetectionService::maybe_auto_pump() {
  if (config_.pump_batch_rounds == 0 || pumping_) return;
  if (queued_total_ >= config_.pump_batch_rounds) pump();
}

void DetectionService::advance_all_to(double time_s) {
  service_time_ = std::max(service_time_, time_s);
  for (Shard& shard : shards_) {
    for (auto& [id, session] : shard.sessions) {
      session.engine.advance_to(time_s);
    }
  }
  pump();
}

bool DetectionService::advance_session_to(SessionId session, double time_s) {
  Session* s = find_session(session);
  if (s == nullptr) return false;
  service_time_ = std::max(service_time_, time_s);
  // Counts as activity for idle eviction: a heartbeat is the session
  // saying "alive, nothing heard" — evicting it would drop its state
  // while the connection is still open.
  s->last_offered_s = std::max(s->last_offered_s, time_s);
  s->engine.advance_to(time_s);
  maybe_auto_pump();
  return true;
}

std::size_t DetectionService::pump() {
  if (pumping_) return 0;
  pumping_ = true;

  // Take the queues out of the shards first: round callbacks may ingest
  // (and so enqueue fresh rounds) during delivery, and those must land in
  // the live queues, not the batch being iterated.
  std::vector<std::vector<PendingRound>> batches(shards_.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    batches[i] = std::move(shards_[i].queue);
    shards_[i].queue.clear();
    total += batches[i].size();
  }
  queued_total_ = 0;

  if (total > 0) {
    const bool instrumented = obs::enabled();
    obs::ScopedTimer pump_timer =
        instrumented
            ? obs::ScopedTimer(sinks().pump_ns, obs::trace(),
                               {.phase = "service.pump",
                                .pairs = static_cast<std::int64_t>(total)})
            : obs::ScopedTimer();

    // One pool task per shard; each drains its own batch FIFO, so a
    // session's rounds run in order on a single worker. Which shard runs
    // on which worker is scheduler whim — results never depend on it.
    parallel_for(
        config_.threads, batches.size(),
        [&](std::size_t /*worker*/, std::size_t index) {
          obs::Histogram* shard_hist =
              instrumented ? shard_round_ns_[index] : nullptr;
          for (PendingRound& pending : batches[index]) {
            // Session id as the span-context observer: detector-internal
            // spans recorded on this worker join to the right session and
            // round even though the engine itself knows neither.
            obs::ScopedSpanContext span_context(
                static_cast<std::int64_t>(pending.input.round_id),
                static_cast<std::int64_t>(pending.session_id));
            obs::ScopedTimer round_timer(shard_hist);
            pending.result = pending.session->engine.run_prepared_round(
                std::move(pending.input));
          }
        });
    pump_timer.stop();

    // Deliver after the join, shard-major and FIFO within each shard — a
    // deterministic order independent of the worker interleaving above.
    for (std::vector<PendingRound>& batch : batches) {
      for (PendingRound& pending : batch) {
        ++stats_.rounds_executed;
        if (callback_ || !listeners_.empty()) {
          const SessionRound delivered{pending.session_id,
                                       std::move(pending.result)};
          if (callback_) callback_(delivered);
          for (const auto& listener : listeners_) listener(delivered);
        }
      }
    }
    ++stats_.pumps;
    if (instrumented) {
      sinks().rounds_executed->add(total);
      sinks().pumps->add(1);
      sinks().pump_rounds->record(static_cast<double>(total));
    }
  }
  evict_idle();
  publish_session_gauges();
  pumping_ = false;
  return total;
}

void DetectionService::evict_idle() {
  if (config_.session_idle_timeout_s <= 0.0) return;
  const double horizon = service_time_ - config_.session_idle_timeout_s;
  for (Shard& shard : shards_) {
    for (auto it = shard.sessions.begin(); it != shard.sessions.end();) {
      Session& session = it->second;
      // A round-callback may have re-queued work for this session during
      // delivery; a session with queued rounds is not idle.
      const bool queued = std::any_of(
          shard.queue.begin(), shard.queue.end(),
          [&](const PendingRound& p) { return p.session == &session; });
      if (!queued && session.last_offered_s < horizon) {
        ++stats_.sessions_evicted_idle;
        if (obs::enabled()) sinks().sessions_evicted_idle->add(1);
        it = shard.sessions.erase(it);
        --sessions_active_;
      } else {
        ++it;
      }
    }
  }
}

bool DetectionService::close(SessionId session) {
  Session* s = find_session(session);
  if (s == nullptr) return false;
  Shard& shard = shards_[s->shard];
  const auto removed = std::remove_if(
      shard.queue.begin(), shard.queue.end(),
      [&](const PendingRound& p) { return p.session == s; });
  const auto dropped =
      static_cast<std::size_t>(shard.queue.end() - removed);
  shard.queue.erase(removed, shard.queue.end());
  queued_total_ -= dropped;
  stats_.rounds_shed_closed += dropped;
  if (obs::enabled() && dropped > 0) sinks().rounds_shed_closed->add(dropped);
  shard.sessions.erase(session);
  --sessions_active_;
  ++stats_.sessions_closed;
  if (obs::enabled()) sinks().sessions_closed->add(1);
  publish_session_gauges();
  return true;
}

const stream::StreamEngine* DetectionService::session_engine(
    SessionId session) const {
  const Shard& shard = shards_[shard_of(session)];
  const auto it = shard.sessions.find(session);
  return it == shard.sessions.end() ? nullptr : &it->second.engine;
}

void DetectionService::for_each_session(
    const std::function<void(SessionId, const stream::StreamEngine&)>& fn)
    const {
  for (const Shard& shard : shards_) {
    for (const auto& [id, session] : shard.sessions) {
      fn(id, session.engine);
    }
  }
}

}  // namespace vp::service
