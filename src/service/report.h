// BENCH_service.json schema ("voiceprint.service_bench/v1"): the
// bench/service_throughput sweep writes one document summarising each
// (session count × beacon rate) configuration — beacon and round
// conservation counters, wall-clock ingest throughput, and the pump /
// round latency percentiles taken from the same obs::HistogramSnapshot
// aggregation a --metrics-out run report uses.
//
// Like stream/report.h, build and validate live together so the emitted
// document and the check (tools/check_run_report --service-bench, the
// smoke test, and the unit tests) cannot drift apart.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace vp::service {

// One sweep configuration's results.
struct ServiceBenchConfigResult {
  std::string label;  // e.g. "s32_rate10"
  std::size_t sessions = 0;
  std::size_t identities_per_session = 0;
  double beacon_rate_hz = 0.0;  // offered per-identity beacon rate
  double duration_s = 0.0;      // stream time covered
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::uint64_t offered = 0;
  std::uint64_t ingested = 0;
  std::uint64_t shed = 0;  // all beacon shed classes summed
  std::uint64_t rounds_prepared = 0;
  std::uint64_t rounds_executed = 0;
  std::uint64_t rounds_shed = 0;       // queue-full + closed-session
  double ingest_beacons_per_s = 0.0;   // offered / wall time, the hot number
  obs::HistogramSnapshot pump_ns;      // pool fan-out latency per pump
  obs::HistogramSnapshot round_ns;     // per-round detector latency
};

// Builds the voiceprint.service_bench/v1 document.
obs::json::Value build_service_bench_report(
    const std::string& binary,
    const std::vector<ServiceBenchConfigResult>& configs);

// True when `report` conforms to voiceprint.service_bench/v1, including
// the two conservation laws (offered = ingested + shed and
// rounds_prepared = rounds_executed + rounds_shed — a drained service
// holds no queued rounds). On failure, `error` (if non-null) receives a
// one-line description.
bool validate_service_bench(const obs::json::Value& report,
                            std::string* error);

}  // namespace vp::service
