// Sharded multi-observer detection service (DESIGN.md §9).
//
// Voiceprint is strictly per-observer — Section IV's detector uses only
// the local observation window, never cooperation — so a deployment is
// really a fleet: thousands of concurrent observers, each running the
// pipeline over its own control-channel log. stream::StreamEngine serves
// one observer; DetectionService hosts many of them behind one facade,
// multiplexing per-session ingest and batching the expensive confirmation
// rounds across sessions onto the shared common::ThreadPool.
//
// Architecture (inference-server shaped):
//   * Session table — sessions are hash-sharded by id (mix64 % shards);
//     each shard owns a sorted map of SessionId → Session, each Session
//     wrapping an **unmodified** stream::StreamEngine. Lifecycle is
//     open (explicit or on first beacon) → ingest → idle eviction or
//     close, with every transition counted.
//   * Round scheduler — engines run with round deferral: a due round is
//     prepared inline (window cut + Eq. 9 density, on the harness
//     thread) and queued on the owning shard; pump() fans the queued
//     rounds out over the pool, one task per shard, draining each
//     shard's queue FIFO. A session lives on exactly one shard, so its
//     rounds execute in order on a single worker — which is what keeps
//     every session's suspects and pair distances bit-identical to a
//     standalone StreamEngine at every shard/thread count (enforced by
//     tests/test_service.cpp and examples/fleet_detection).
//   * Admission control & backpressure — a global session cap (beacons
//     needing a new session past it are shed), a global queued-round cap
//     (rounds past it are shed, deterministically: the queue is drained
//     only at pump points), and an auto-pump threshold that converts
//     sustained load into inline batch execution instead of unbounded
//     queue growth. Everything shed is counted; the conservation laws
//       beacons_offered = beacons_ingested + Σ beacons_shed_*
//       rounds_prepared = rounds_executed + Σ rounds_shed_* + queued
//       sessions_opened = active + closed + evicted_idle
//     hold after every call (checked by the tests and by
//     service::validate_service_bench).
//
// Threading model: the service is driven by one harness thread (open /
// ingest / advance / pump / close); parallelism is internal to pump(),
// which forks over shards and joins before returning. Round results are
// delivered through the service callback after the join, shard-major and
// FIFO within each shard — a deterministic order independent of worker
// interleaving.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "stream/engine.h"

namespace vp::obs {
class Histogram;
}  // namespace vp::obs

namespace vp::service {

struct ServiceCheckpoint;  // service/checkpoint.h

using SessionId = std::uint64_t;

struct ServiceConfig {
  // Shard count: the unit of pump() parallelism and of FIFO ordering.
  // More shards = more usable workers, fewer = coarser batching; a
  // session's shard is fixed at open (mix64(id) % shards).
  std::size_t shards = 4;
  // Pool width for pump(); 0 = all hardware threads. Effective
  // parallelism is min(threads, shards). Never changes any result.
  std::size_t threads = 1;
  // Global admission cap: beacons that would need a new session past
  // this are shed (fabricated observers cannot grow the service).
  std::size_t max_sessions = 4096;
  // Global queued-round cap: rounds prepared while the queue is full are
  // shed and counted (the overload regime the service_bench exercises).
  std::size_t max_queued_rounds = 4096;
  // Auto-pump threshold: ingest/advance pump inline once this many
  // rounds are queued — backpressure by batch execution. 0 = pump only
  // when the caller says so.
  std::size_t pump_batch_rounds = 64;
  // Sessions with no offered beacon for this long (in stream time) are
  // evicted at the end of a pump. 0 = never evict.
  double session_idle_timeout_s = 0.0;
  // Template for every session's engine (window geometry, bounded-memory
  // knobs, detector options). Per-session engines are constructed from
  // this verbatim.
  stream::StreamEngineConfig engine;
};

// One session's completed confirmation round, as delivered to the
// service round callback.
struct SessionRound {
  SessionId session = 0;
  stream::StreamRound round;
};

class DetectionService {
 public:
  // Service-level admission verdict for one beacon. The engine-level
  // classes are forwarded so one enum tells the whole story.
  enum class Admission {
    kAccepted,
    kShedSessionCap,    // needed a new session past max_sessions
    kShedRateLimited,   // session engine: over its ingest rate cap
    kShedIdentityCap,   // session engine: new identity at its cap
    kShedOutOfOrder,    // session engine: time regressed
    kShedInvalid,       // session engine: failed the validation front
    kShedConditioned,   // session engine: Hampel hard-reject (§15)
  };

  // Plain counters mirroring the service.* metrics, always maintained
  // (registry copies are gated on obs::enabled()).
  struct Stats {
    std::uint64_t beacons_offered = 0;
    std::uint64_t beacons_ingested = 0;
    std::uint64_t beacons_shed_session_cap = 0;
    std::uint64_t beacons_shed_rate_limited = 0;
    std::uint64_t beacons_shed_identity_cap = 0;
    std::uint64_t beacons_shed_out_of_order = 0;
    // Engine validation front, summed across sessions (per-reason detail
    // lives in each session engine's Stats and the stream.shed_invalid.*
    // metrics).
    std::uint64_t beacons_shed_invalid = 0;
    // §15 conditioning hard-rejects, summed across sessions (per-reason
    // cond.* detail lives in each session engine's Stats).
    std::uint64_t beacons_shed_conditioned = 0;
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_rejected = 0;  // open() refused at the cap
    std::uint64_t sessions_closed = 0;
    std::uint64_t sessions_evicted_idle = 0;
    std::uint64_t rounds_prepared = 0;
    std::uint64_t rounds_executed = 0;
    std::uint64_t rounds_shed_queue_full = 0;
    std::uint64_t rounds_shed_closed = 0;  // queued when session closed
    std::uint64_t pumps = 0;
  };

  explicit DetectionService(ServiceConfig config);

  // Restores a checkpointed service (DESIGN.md §10). `config` must hash-
  // match the checkpoint's (service_config_hash; VP_REQUIRE otherwise);
  // every session is rebuilt from its engine checkpoint with a fresh
  // deferral hook, after which the restored fleet emits bit-identical
  // rounds to the uninterrupted one (tests/test_checkpoint.cpp).
  DetectionService(ServiceConfig config, const ServiceCheckpoint& checkpoint);

  // Captures the complete service state: Stats, service time, and every
  // session's engine checkpoint. Requires an empty round queue — pump()
  // first; a queued round's window is already cut and cannot be re-cut,
  // so checkpointing over it would silently lose rounds.
  ServiceCheckpoint checkpoint() const;

  // Opens a session explicitly (idempotent for a live session). Returns
  // false — and counts a rejection — at the session cap.
  bool open(SessionId session);

  // Routes one beacon to its session, opening it on first contact. Due
  // rounds are prepared inline and queued; the expensive detector work
  // runs at the next pump. Never blocks, never throws on overload.
  Admission ingest(SessionId session, IdentityId id, double time_s,
                   double rssi_dbm);

  // Advances every session's stream clock to time_s (preparing any due
  // rounds), then pumps. Call with the trace end time to flush.
  void advance_all_to(double time_s);

  // Advances one session's stream clock to time_s (preparing any due
  // rounds), leaving every other session untouched. This is the wire
  // heartbeat/close path: connections progress at different stream
  // rates, and advancing the whole fleet to the fastest connection's
  // clock would run slower sessions' rounds early over partial windows —
  // breaking bit-parity with direct ingestion. Queued rounds run at the
  // next pump (or inline via the auto-pump threshold). Returns false for
  // an unknown session.
  bool advance_session_to(SessionId session, double time_s);

  // Executes every queued round on the pool (one task per shard, FIFO
  // within the shard), delivers results in deterministic order, then
  // evicts idle sessions. Returns the number of rounds executed.
  std::size_t pump();

  // Closes a session now; its queued rounds are dropped and counted as
  // rounds_shed_closed. Returns false for an unknown session.
  bool close(SessionId session);

  // Invoked from pump() — after the parallel region, on the pumping
  // thread — once per executed round, shard-major and FIFO within each
  // shard.
  void set_round_callback(std::function<void(const SessionRound&)> callback) {
    callback_ = std::move(callback);
  }

  // Additional result listeners, invoked after the round callback for
  // every delivered round, in registration order — same thread, same
  // deterministic delivery order. This is how cross-cutting consumers
  // (fusion::FusionEngine) tap the result stream without stealing the
  // primary callback from the driver. Listeners cannot be removed;
  // register objects that outlive the service.
  void add_round_listener(std::function<void(const SessionRound&)> listener) {
    listeners_.push_back(std::move(listener));
  }

  const Stats& stats() const { return stats_; }
  const ServiceConfig& config() const { return config_; }
  std::size_t sessions_active() const { return sessions_active_; }
  std::size_t queued_rounds() const { return queued_total_; }
  // Highest stream time seen by any beacon or advance_all_to call.
  double service_time() const { return service_time_; }

  // The session's engine, for stats introspection; nullptr when unknown.
  const stream::StreamEngine* session_engine(SessionId session) const;

  // Visits every live session in (shard, id) order.
  void for_each_session(
      const std::function<void(SessionId, const stream::StreamEngine&)>& fn)
      const;

 private:
  struct Session {
    SessionId id = 0;
    std::size_t shard = 0;
    double last_offered_s = 0.0;  // stream time of the last beacon offered
    stream::StreamEngine engine;

    Session(SessionId id, std::size_t shard, stream::StreamEngineConfig cfg)
        : id(id), shard(shard), engine(std::move(cfg)) {}

    // Restore path: adopts an engine rebuilt from a checkpoint.
    Session(SessionId id, std::size_t shard, stream::StreamEngine&& restored)
        : id(id), shard(shard), engine(std::move(restored)) {}
  };

  // One queued confirmation round. `session` stays valid: map nodes are
  // address-stable and close() removes a session's entries before erasing
  // it.
  struct PendingRound {
    Session* session = nullptr;
    SessionId session_id = 0;
    stream::RoundInput input;
    stream::StreamRound result;  // filled by the pump worker
  };

  struct Shard {
    // Sorted map: deterministic iteration for advance_all_to/eviction,
    // and node stability for the Session* captured by queue entries and
    // engine deferral hooks.
    std::map<SessionId, Session> sessions;
    std::vector<PendingRound> queue;  // FIFO within the shard
  };

  std::size_t shard_of(SessionId session) const;
  Session* find_session(SessionId session);
  Session* open_session(SessionId session);  // nullptr at the cap
  void enqueue_round(Session& session, stream::RoundInput&& input);
  void evict_idle();
  void maybe_auto_pump();
  void publish_session_gauges();

  ServiceConfig config_;
  std::vector<Shard> shards_;
  // Per-shard round-latency histograms ("service.shard<k>.round_ns"),
  // resolved once at construction; registry nodes are address-stable so
  // pump workers record without a lookup. Parallel to shards_.
  std::vector<obs::Histogram*> shard_round_ns_;
  std::function<void(const SessionRound&)> callback_;
  std::vector<std::function<void(const SessionRound&)>> listeners_;
  Stats stats_;
  std::size_t sessions_active_ = 0;
  std::size_t queued_total_ = 0;
  // This instance's last-published contribution to the shared
  // service.sessions_active / service.queued_rounds gauges. Gauge
  // updates publish *deltas* of the instance's own counts so several
  // live backends (the wire ingestion tier routes across one-or-more
  // services, and failover keeps a drained predecessor alive) sum
  // correctly in one registry. A restored service inherits its
  // predecessor's published contribution instead of re-publishing it.
  std::size_t published_active_ = 0;
  std::size_t published_queued_ = 0;
  double service_time_ = 0.0;
  bool pumping_ = false;  // re-entrancy guard for callback-driven calls
};

}  // namespace vp::service
