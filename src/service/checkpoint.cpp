#include "service/checkpoint.h"

#include <bit>
#include <cstdio>
#include <utility>

#include "common/binio.h"
#include "common/rng.h"

namespace vp::service {

namespace {

constexpr std::uint32_t kMagic = 0x43535056u;  // "VPSC" little-endian
// Version 2 adds beacons_shed_conditioned (§15) after the shed_invalid
// counter; version-1 blobs still decode with it defaulted to zero (only
// unconditioned services could have written them).
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMinVersion = 1;

bool fail(std::string* error, std::string reason) {
  if (error != nullptr) *error = std::move(reason);
  return false;
}

void encode_stats(ByteWriter& w, const DetectionService::Stats& s) {
  w.put_u64(s.beacons_offered);
  w.put_u64(s.beacons_ingested);
  w.put_u64(s.beacons_shed_session_cap);
  w.put_u64(s.beacons_shed_rate_limited);
  w.put_u64(s.beacons_shed_identity_cap);
  w.put_u64(s.beacons_shed_out_of_order);
  w.put_u64(s.beacons_shed_invalid);
  w.put_u64(s.beacons_shed_conditioned);
  w.put_u64(s.sessions_opened);
  w.put_u64(s.sessions_rejected);
  w.put_u64(s.sessions_closed);
  w.put_u64(s.sessions_evicted_idle);
  w.put_u64(s.rounds_prepared);
  w.put_u64(s.rounds_executed);
  w.put_u64(s.rounds_shed_queue_full);
  w.put_u64(s.rounds_shed_closed);
  w.put_u64(s.pumps);
}

bool decode_stats(ByteReader& r, std::uint32_t version,
                  DetectionService::Stats& s) {
  return r.get_u64(s.beacons_offered) && r.get_u64(s.beacons_ingested) &&
         r.get_u64(s.beacons_shed_session_cap) &&
         r.get_u64(s.beacons_shed_rate_limited) &&
         r.get_u64(s.beacons_shed_identity_cap) &&
         r.get_u64(s.beacons_shed_out_of_order) &&
         r.get_u64(s.beacons_shed_invalid) &&
         (version < 2 || r.get_u64(s.beacons_shed_conditioned)) &&
         r.get_u64(s.sessions_opened) &&
         r.get_u64(s.sessions_rejected) && r.get_u64(s.sessions_closed) &&
         r.get_u64(s.sessions_evicted_idle) && r.get_u64(s.rounds_prepared) &&
         r.get_u64(s.rounds_executed) && r.get_u64(s.rounds_shed_queue_full) &&
         r.get_u64(s.rounds_shed_closed) && r.get_u64(s.pumps);
}

}  // namespace

std::uint64_t service_config_hash(const ServiceConfig& config) {
  std::uint64_t h = hash64("vp.service.config/v1");
  h = mix64(h, static_cast<std::uint64_t>(config.shards));
  h = mix64(h, static_cast<std::uint64_t>(config.max_sessions));
  h = mix64(h, static_cast<std::uint64_t>(config.max_queued_rounds));
  h = mix64(h, static_cast<std::uint64_t>(config.pump_batch_rounds));
  h = mix64(h, std::bit_cast<std::uint64_t>(config.session_idle_timeout_s));
  h = mix64(h, stream::engine_config_hash(config.engine));
  return h;
}

std::vector<std::uint8_t> encode_checkpoint(
    const ServiceCheckpoint& checkpoint) {
  std::vector<std::uint8_t> bytes;
  ByteWriter w(bytes);
  w.put_u32(kMagic);
  w.put_u32(kVersion);
  w.put_u64(checkpoint.config_hash);
  w.put_f64(checkpoint.service_time);
  encode_stats(w, checkpoint.stats);
  w.put_u64(checkpoint.sessions.size());
  for (const SessionCheckpoint& sc : checkpoint.sessions) {
    w.put_u64(sc.id);
    w.put_f64(sc.last_offered_s);
    const std::vector<std::uint8_t> engine_blob =
        stream::encode_checkpoint(sc.engine);
    w.put_u64(engine_blob.size());
    bytes.insert(bytes.end(), engine_blob.begin(), engine_blob.end());
  }
  w.put_u64(fnv1a64(bytes));
  return bytes;
}

bool decode_checkpoint(std::span<const std::uint8_t> bytes,
                       ServiceCheckpoint* out, std::string* error) {
  if (bytes.size() < 8 + 8) {
    return fail(error, "service checkpoint: truncated header");
  }
  std::uint64_t stored_sum = 0;
  for (int i = 7; i >= 0; --i) {
    stored_sum = (stored_sum << 8) |
                 bytes[bytes.size() - 8 + static_cast<std::size_t>(i)];
  }
  const auto body = bytes.subspan(0, bytes.size() - 8);
  if (fnv1a64(body) != stored_sum) {
    return fail(error, "service checkpoint: checksum mismatch");
  }

  ByteReader r(body);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!r.get_u32(magic) || magic != kMagic) {
    return fail(error, "service checkpoint: bad magic (not VPSC)");
  }
  if (!r.get_u32(version) || version < kMinVersion || version > kVersion) {
    return fail(error, "service checkpoint: unsupported version");
  }

  ServiceCheckpoint cp;
  std::uint64_t session_count = 0;
  if (!r.get_u64(cp.config_hash) || !r.get_f64(cp.service_time) ||
      !decode_stats(r, version, cp.stats) || !r.get_u64(session_count)) {
    return fail(error, "service checkpoint: truncated service fields");
  }
  if (session_count > r.remaining() / (3 * 8)) {
    return fail(error, "service checkpoint: session count exceeds payload");
  }
  cp.sessions.reserve(static_cast<std::size_t>(session_count));
  SessionId previous_id = 0;
  for (std::uint64_t i = 0; i < session_count; ++i) {
    SessionCheckpoint sc;
    std::uint64_t blob_size = 0;
    if (!r.get_u64(sc.id) || !r.get_f64(sc.last_offered_s) ||
        !r.get_u64(blob_size)) {
      return fail(error, "service checkpoint: truncated session header");
    }
    if (i > 0 && sc.id <= previous_id) {
      return fail(error, "service checkpoint: session ids not ascending");
    }
    previous_id = sc.id;
    if (blob_size > r.remaining()) {
      return fail(error, "service checkpoint: engine blob exceeds payload");
    }
    const auto blob = body.subspan(r.cursor(),
                                   static_cast<std::size_t>(blob_size));
    std::string engine_error;
    if (!stream::decode_checkpoint(blob, &sc.engine, &engine_error)) {
      return fail(error, "service checkpoint: session engine: " +
                             engine_error);
    }
    if (!r.skip(static_cast<std::size_t>(blob_size))) {
      return fail(error, "service checkpoint: truncated engine blob");
    }
    cp.sessions.push_back(std::move(sc));
  }
  if (r.remaining() != 0) {
    return fail(error, "service checkpoint: trailing bytes");
  }
  if (out != nullptr) *out = std::move(cp);
  return true;
}

bool save_checkpoint(const ServiceCheckpoint& checkpoint,
                     const std::string& path, std::string* error) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(checkpoint);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return fail(error, "service checkpoint: cannot open " + tmp);
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  if (std::fclose(f) != 0 || written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return fail(error, "service checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail(error,
                "service checkpoint: cannot rename " + tmp + " over " + path);
  }
  return true;
}

bool load_checkpoint(const std::string& path, ServiceCheckpoint* out,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return fail(error, "service checkpoint: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return fail(error, "service checkpoint: read error on " + path);
  return decode_checkpoint(bytes, out, error);
}

}  // namespace vp::service
