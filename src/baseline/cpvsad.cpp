#include "baseline/cpvsad.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "common/error.h"
#include "common/stats.h"

namespace vp::baseline {

namespace {

// Mean RSSI of a neighbour's beacons.
double mean_rssi(const std::vector<sim::BeaconRecord>& beacons) {
  RunningStats s;
  for (const auto& b : beacons) s.add(b.rssi_dbm);
  return s.mean();
}

// Union-find for the co-location clustering.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

CpvsadDetector::CpvsadDetector(CpvsadOptions options)
    : options_(options),
      assumed_model_(options.frequency_hz, options.assumed_params,
                     options.link_budget) {
  VP_REQUIRE(options.max_witnesses >= 1);
  VP_REQUIRE(options.significance > 0.0 && options.significance < 1.0);
}

double CpvsadDetector::estimate_position(
    const std::vector<double>& observer_x,
    const std::vector<double>& est_distance, double claimed_x,
    double road_length_m) const {
  VP_REQUIRE(!observer_x.empty());
  VP_REQUIRE(observer_x.size() == est_distance.size());
  // The tiny claim-anchored term only breaks ties: with a single observer
  // the 1-D problem has two exact solutions (x_o ± d), and a distance
  // check cannot tell the sides apart — the claimer gets the benefit of
  // the doubt on the side, while the distance itself is still verified.
  auto cost = [&](double x) {
    double acc = 0.0;
    for (std::size_t i = 0; i < observer_x.size(); ++i) {
      const double r = std::fabs(x - observer_x[i]) - est_distance[i];
      acc += r * r;
    }
    const double pull = x - claimed_x;
    return acc + 1e-4 * pull * pull;
  };
  // Coarse scan over the road, then a fine scan around the best cell. The
  // cost is piecewise smooth with at most |O| kinks, so this is robust.
  double best_x = 0.0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (double x = 0.0; x <= road_length_m; x += options_.grid_coarse_m) {
    const double c = cost(x);
    if (c < best_cost) {
      best_cost = c;
      best_x = x;
    }
  }
  const double lo = std::max(0.0, best_x - options_.grid_coarse_m);
  const double hi = std::min(road_length_m, best_x + options_.grid_coarse_m);
  for (double x = lo; x <= hi; x += options_.grid_fine_m) {
    const double c = cost(x);
    if (c < best_cost) {
      best_cost = c;
      best_x = x;
    }
  }
  return best_x;
}

std::vector<IdentityId> CpvsadDetector::detect(
    const sim::ObservationWindow& window, const sim::World& world) {
  // --- Recruit witnesses -------------------------------------------------
  // Vehicles driving opposite to the verifier within range; their RSU
  // position certificates make them acceptable (Section II's discussion of
  // [19]). Their actual logs are consulted — no forged reports, per
  // Assumption 1 (no collusion).
  const sim::Node& verifier = world.node(window.observer);
  // Everything is judged at window time, not at the simulation's end: the
  // verifier has moved since. Driving direction is inferred from the GPS
  // trace over the last second of the window.
  auto direction_at = [&](const sim::Node& node, double t) {
    return node.trace().position_at(t).x - node.trace().position_at(t - 1.0).x;
  };
  const mob::Vec2 verifier_pos = verifier.trace().position_at(window.t1);
  const double verifier_dir = direction_at(verifier, window.t1);

  std::vector<const sim::Node*> observers;  // verifier first
  observers.push_back(&verifier);
  for (const auto& node : world.nodes()) {
    if (observers.size() >= options_.max_witnesses + 1) break;
    if (node->id() == verifier.id()) continue;
    if (direction_at(*node, window.t1) * verifier_dir > 0.0) continue;
    if (mob::distance(node->trace().position_at(window.t1), verifier_pos) >
        world.config().max_transmission_range_m) {
      continue;
    }
    observers.push_back(node.get());
  }

  last_estimates_.clear();
  // --- Estimate every claimer's position ---------------------------------
  // A short sub-window anchored at the claimer's last audible beacon:
  // geometry moves too fast (opposite flows close at ~50 m/s) for a 20 s
  // RSSI mean to map to any single distance, and anchoring per claimer
  // keeps identities verifiable even if they left range mid-window.
  std::vector<Estimate> estimates;
  const double road_length = world.highway().length_m();
  for (const sim::NeighborObservation& neighbor : window.neighbors) {
    if (neighbor.beacons.empty()) continue;
    const double anchor = neighbor.beacons.back().time_s;
    const double est_t0 =
        std::max(window.t0, anchor - options_.estimation_window_s);
    const double est_t1 = anchor + 1e-9;
    std::vector<double> obs_x;
    std::vector<double> est_d;
    for (const sim::Node* obs : observers) {
      const std::vector<sim::BeaconRecord> beacons =
          obs->log().records(neighbor.id, est_t0, est_t1);
      if (beacons.size() < options_.min_samples) continue;
      const double rssi = mean_rssi(beacons);
      // Invert with the power the WSMP header declares (IEEE 1609.3);
      // cross-checking that declaration is exactly what this scheme does.
      double declared = 0.0;
      for (const sim::BeaconRecord& b : beacons) {
        declared += b.declared_tx_power_dbm;
      }
      declared /= static_cast<double>(beacons.size());
      const double d = assumed_model_.distance_for_mean_power(
          declared, rssi, window.t1);
      // The observer's certified position at the middle of the sub-window
      // (from its own GPS trace, exchanged with the report).
      const double t_mid = 0.5 * (beacons.front().time_s + beacons.back().time_s);
      obs_x.push_back(obs->trace().position_at(t_mid).x);
      est_d.push_back(d);
    }
    // The claimer's own claimed position over the same sub-window, as the
    // verifier heard it.
    std::vector<sim::BeaconRecord> own;
    for (const sim::BeaconRecord& b : neighbor.beacons) {
      if (b.time_s >= est_t0) own.push_back(b);
    }
    if (obs_x.empty() || own.empty()) continue;

    Estimate e;
    e.id = neighbor.id;
    e.observers = obs_x.size();
    e.anchor_time_s = anchor;
    double claimed_sum = 0.0;
    for (const sim::BeaconRecord& b : own) claimed_sum += b.claimed_position.x;
    e.claimed_x = claimed_sum / static_cast<double>(own.size());
    e.estimated_x =
        estimate_position(obs_x, est_d, e.claimed_x, road_length);

    // Goodness-of-fit gate (only testable with corroboration): are the
    // observers' distance estimates mutually consistent under the assumed
    // model? Budget: per-observer distance-domain sigma at its estimated
    // range.
    if (obs_x.size() >= 2) {
      double rss = 0.0;
      double budget = 0.0;
      const double sigma_single_db =
          std::sqrt(options_.assumed_sigma_db * options_.assumed_sigma_db /
                        options_.independent_shadow_samples +
                    options_.assumed_power_uncertainty_db *
                        options_.assumed_power_uncertainty_db);
      for (std::size_t i = 0; i < obs_x.size(); ++i) {
        const double r = std::fabs(e.estimated_x - obs_x[i]) - est_d[i];
        rss += r * r;
        // The budget is sized at the geometry the CLAIM implies — the
        // hypothesis under test — not at the (possibly wildly biased)
        // estimates themselves.
        const double d_claim = std::max(std::fabs(e.claimed_x - obs_x[i]), 25.0);
        const double g = d_claim <= options_.assumed_params.critical_distance_m
                             ? options_.assumed_params.gamma1
                             : options_.assumed_params.gamma2;
        const double s =
            d_claim * std::log(10.0) / (10.0 * g) * sigma_single_db;
        budget += s * s;
      }
      const double rms = std::sqrt(rss / static_cast<double>(obs_x.size()));
      const double budget_rms =
          std::sqrt(budget / static_cast<double>(obs_x.size()));
      if (rms > options_.residual_gate_sigma * budget_rms) {
        continue;  // corrupted measurement: no verdict for this identity
      }
    }

    // Error budget from the assumed model at the CLAIMED distance. The
    // statistical σ uses the number of independent shadowing draws per
    // observer (samples within one coherence time are not independent),
    // divided by √observers; the systematic σ covers declared-power
    // calibration. The budget scales the claim check and the co-location
    // radius; a drifted channel exceeds it (Fig. 11b).
    const double z = normal_quantile(1.0 - options_.significance / 2.0);
    const double claimed_dist = std::max(
        std::fabs(e.claimed_x - verifier.trace().position_at(anchor).x), 25.0);
    // Use the path-loss exponent of the segment the claimed distance falls
    // in: near links live on the much flatter γ1 slope, where one dB of
    // shadowing moves the distance estimate three times further.
    const double gamma =
        claimed_dist <= options_.assumed_params.critical_distance_m
            ? options_.assumed_params.gamma1
            : options_.assumed_params.gamma2;
    const double metres_per_db =
        claimed_dist * std::log(10.0) / (10.0 * gamma);
    const double sigma_stat_db =
        options_.assumed_sigma_db /
        std::sqrt(options_.independent_shadow_samples *
                  static_cast<double>(e.observers));
    const double sigma_db = std::sqrt(
        sigma_stat_db * sigma_stat_db + options_.assumed_power_uncertainty_db *
                                            options_.assumed_power_uncertainty_db);
    e.sigma_x_m = metres_per_db * sigma_db;
    const double tolerance =
        std::max(options_.claim_tolerance_floor_m, z * e.sigma_x_m);
    e.inconsistent = std::fabs(e.estimated_x - e.claimed_x) > tolerance;
    estimates.push_back(e);
  }
  last_estimates_ = estimates;

  // --- Cluster the estimates ----------------------------------------------
  DisjointSets sets(estimates.size());
  for (std::size_t i = 0; i + 1 < estimates.size(); ++i) {
    for (std::size_t j = i + 1; j < estimates.size(); ++j) {
      const double z = normal_quantile(1.0 - options_.significance / 2.0);
      const double co_tolerance =
          std::max(options_.colocate_floor_m,
                   z * std::sqrt(estimates[i].sigma_x_m * estimates[i].sigma_x_m +
                                 estimates[j].sigma_x_m * estimates[j].sigma_x_m));
      if (std::fabs(estimates[i].estimated_x - estimates[j].estimated_x) <=
              co_tolerance &&
          std::fabs(estimates[i].anchor_time_s - estimates[j].anchor_time_s) <=
              options_.anchor_tolerance_s) {
        sets.unite(i, j);
      }
    }
  }
  std::map<std::size_t, std::vector<std::size_t>> clusters;
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    clusters[sets.find(i)].push_back(i);
  }

  // --- Flag Sybil groups ---------------------------------------------------
  std::set<IdentityId> suspects;
  for (const auto& [root, members] : clusters) {
    std::size_t inconsistent = 0;
    double centre = 0.0;
    for (std::size_t m : members) {
      if (estimates[m].inconsistent) ++inconsistent;
      centre += estimates[m].estimated_x;
    }
    if (inconsistent < 2) continue;  // not a Sybil group
    centre /= static_cast<double>(members.size());

    // Flag the inconsistent members, and identify the sender: the
    // consistent member whose *claim* matches the cluster centre (the
    // malicious node beacons its true position for its own identity).
    std::size_t sender = members.size();
    double sender_gap = 2.0 * options_.colocate_floor_m;
    for (std::size_t m : members) {
      if (estimates[m].inconsistent) {
        suspects.insert(estimates[m].id);
        continue;
      }
      const double gap = std::fabs(estimates[m].claimed_x - centre);
      if (gap < sender_gap) {
        sender_gap = gap;
        sender = m;
      }
    }
    if (sender < members.size()) suspects.insert(estimates[sender].id);
  }
  return {suspects.begin(), suspects.end()};
}

}  // namespace vp::baseline
