// CPVSAD — Cooperative Position Verification based Sybil Attack Detection,
// the baseline the paper compares against (Yu, Xu, Xiao [19]; Section V-C).
//
// The scheme is everything Voiceprint is not: *cooperative* (the verifier
// recruits witness vehicles from the opposite traffic flow, which hold
// RSU-issued position certificates and are therefore trusted physical
// entities), *model-dependent* (a predefined propagation model with a
// fixed shadowing deviation converts mean RSSI to distance), and
// *infrastructure-assisted* (the certificates come from RSUs).
//
// Pipeline per claimer identity:
//   1. every observer (verifier + witnesses) inverts the assumed model on
//      its mean RSSI to a distance estimate;
//   2. the claimer's road position is estimated by 1-D least-squares
//      multilateration along the road;
//   3. claim check: estimated vs claimed position beyond a tolerance that
//      tightens as more witnesses corroborate (statistical testing at the
//      configured significance level) marks the claim inconsistent;
//   4. identities whose *estimates* co-locate form a cluster; a cluster
//      with >= 2 inconsistent members is a Sybil group: its inconsistent
//      members are flagged and the consistent member whose claim sits at
//      the cluster centre is identified as the malicious sender.
//
// Because steps 2–4 need accurate model inversion, CPVSAD's detection rate
// collapses when the real environment drifts away from the assumed
// parameters (Fig. 11b) — while more traffic means more witnesses and
// *better* accuracy when the model is right (Fig. 11a).
#pragma once

#include <string_view>

#include "radio/dual_slope.h"
#include "sim/detector.h"

namespace vp::baseline {

struct CpvsadOptions {
  // The predefined model (matches the simulator's base environment in the
  // Fig. 11a setting; the Fig. 11b run drifts the real one away from it).
  radio::DualSlopeParams assumed_params = radio::DualSlopeParams::highway();
  double frequency_hz = 5.89e9;
  radio::LinkBudget link_budget{};
  double assumed_tx_power_dbm = 20.0;  // DSRC default; spoofed powers hurt
  double assumed_sigma_db = 3.9;       // Section V-C
  double significance = 0.05;          // Section V-C

  std::size_t max_witnesses = 8;
  std::size_t min_samples = 4;

  // Geometry changes quickly in traffic (opposite flows close at ~50 m/s),
  // so position estimation uses a short sub-window anchored at each
  // claimer's last audible beacon; longer sub-windows average RSSI over
  // too much relative motion.
  double estimation_window_s = 2.0;
  // Two estimates can only be tested for co-location if their anchors are
  // this close in time (the vehicles moved in between otherwise).
  double anchor_tolerance_s = 3.0;

  // Both tolerances are budgeted from the assumed model at the CLAIMED
  // distance, via error propagation: σ_x ≈ d·ln10/(10γ)·σ_dB. σ_dB has a
  // statistical part (shadowing averaged over the estimation window — the
  // samples are CORRELATED, so the divisor is the number of independent
  // shadow draws, not the packet count) and a systematic part (declared-
  // power calibration). If the real channel drifts away from the assumed
  // parameters, the budget no longer covers the true scatter and the
  // scheme degrades — exactly the paper's Fig. 11b point.
  double assumed_power_uncertainty_db = 1.5;
  // Independent shadowing draws per estimation window (window / coherence).
  double independent_shadow_samples = 2.0;
  // Floors so tiny claimed distances don't collapse the budgets.
  double claim_tolerance_floor_m = 35.0;
  double colocate_floor_m = 30.0;

  // Goodness-of-fit gate: with >= 2 observers the multilateration residual
  // must be statistically compatible with the assumed model (this is the
  // "statistical testing according to the predefined model parameters" the
  // paper ascribes to CPVSAD). If the residual exceeds this many budget
  // sigmas the measurement is deemed corrupted and NO verdict is issued
  // for that identity. A drifted channel makes the witnesses' distance
  // estimates mutually inconsistent, so most identities become
  // unverifiable — the Fig. 11b collapse.
  double residual_gate_sigma = 3.0;

  // Multilateration grid resolution (coarse scan, then refinement).
  double grid_coarse_m = 10.0;
  double grid_fine_m = 1.0;
};

class CpvsadDetector final : public sim::Detector {
 public:
  explicit CpvsadDetector(CpvsadOptions options = {});

  std::vector<IdentityId> detect(const sim::ObservationWindow& window,
                                 const sim::World& world) override;

  std::string_view name() const override { return "CPVSAD"; }
  const CpvsadOptions& options() const { return options_; }

  struct Estimate {
    IdentityId id = kInvalidIdentity;
    double estimated_x = 0.0;
    double claimed_x = 0.0;
    // When the estimate was taken (the claimer's last audible moment) —
    // co-location is only meaningful between near-simultaneous estimates.
    double anchor_time_s = 0.0;
    // Error budget (metres) propagated from the assumed model.
    double sigma_x_m = 0.0;
    bool inconsistent = false;
    std::size_t observers = 0;
  };

  // Per-claimer estimates of the last detect() call (diagnostics).
  const std::vector<Estimate>& last_estimates() const {
    return last_estimates_;
  }

 private:
  // 1-D multilateration along the road: minimises Σ(|x−x_o| − d̂_o)² plus a
  // tiny claim-anchored tie-break (the single-observer problem is mirror-
  // ambiguous).
  double estimate_position(const std::vector<double>& observer_x,
                           const std::vector<double>& est_distance,
                           double claimed_x, double road_length_m) const;

  CpvsadOptions options_;
  radio::DualSlopeModel assumed_model_;
  std::vector<Estimate> last_estimates_;
};

}  // namespace vp::baseline
