#include "baseline/rssi_variation.h"

#include <cmath>

#include "common/error.h"

namespace vp::baseline {

RssiVariationDetector::RssiVariationDetector(RssiVariationOptions options)
    : options_(options),
      assumed_model_(options.frequency_hz, options.assumed_params,
                     options.link_budget) {
  VP_REQUIRE(options.violation_fraction > 0.0 &&
             options.violation_fraction <= 1.0);
}

std::vector<IdentityId> RssiVariationDetector::detect(
    const sim::ObservationWindow& window, const sim::World& world) {
  // The entry check consults the observer's own reception history (a real
  // OBU keeps it): an identity with no record before the window is a true
  // newcomer.
  const sim::RssiLog& history = world.node(window.observer).log();

  std::vector<IdentityId> suspects;
  for (const sim::NeighborObservation& neighbor : window.neighbors) {
    if (neighbor.beacons.size() < 2) continue;

    const sim::BeaconRecord& first = neighbor.beacons.front();
    const bool never_heard_before =
        history.sample_count(neighbor.id, 0.0, window.t0) == 0;
    const bool appeared_inside =
        never_heard_before && first.time_s > window.t0 + 1.0;
    if (appeared_inside &&
        first.rssi_dbm > options_.entry_rssi_threshold_dbm) {
      suspects.push_back(neighbor.id);
      continue;
    }

    // Variation check: per consecutive-beacon step, bound |ΔRSSI| by the
    // steepest mean-power change the closing speed allows, plus margin.
    std::size_t violations = 0;
    std::size_t steps = 0;
    for (std::size_t i = 1; i < neighbor.beacons.size(); ++i) {
      const sim::BeaconRecord& a = neighbor.beacons[i - 1];
      const sim::BeaconRecord& b = neighbor.beacons[i];
      const double dt = b.time_s - a.time_s;
      if (dt <= 0.0 || dt > 2.0) continue;  // long gaps carry no bound
      const double d_claimed = std::max(
          mob::distance(a.claimed_position, window.observer_position), 5.0);
      const double d_moved = options_.max_relative_speed_mps * dt;
      const double d_near = std::max(d_claimed - d_moved, 1.0);
      const double d_far = d_claimed + d_moved;
      const double p_near = assumed_model_.mean_rx_power_dbm(
          options_.assumed_tx_power_dbm, d_near, b.time_s);
      const double p_far = assumed_model_.mean_rx_power_dbm(
          options_.assumed_tx_power_dbm, d_far, b.time_s);
      const double bound =
          (p_near - p_far) + options_.variation_margin_db;
      if (std::fabs(b.rssi_dbm - a.rssi_dbm) > bound) ++violations;
      ++steps;
    }
    if (steps > 0 && static_cast<double>(violations) >
                         options_.violation_fraction *
                             static_cast<double>(steps)) {
      suspects.push_back(neighbor.id);
    }
  }
  return suspects;
}

}  // namespace vp::baseline
