// Independent RSSI-variation check in the spirit of Bouassida et al. [17]
// (Table I row "Bouassida"): a model-dependent but cooperative-free
// plausibility test, included as a second baseline for the ablation
// benches.
//
// Two heuristics flag an identity:
//   1. *Entry check* — a genuine vehicle enters radio range at the edge,
//      so its first beacons should be weak; an identity whose first
//      observed RSSI is already strong popped into existence mid-range
//      (how fabricated identities appear when the attack starts).
//   2. *Variation check* — between consecutive beacons the distance can
//      change by at most the closing speed, which bounds |ΔRSSI| under the
//      assumed propagation model; larger jumps are physically implausible.
#pragma once

#include <string_view>

#include "radio/dual_slope.h"
#include "sim/detector.h"

namespace vp::baseline {

struct RssiVariationOptions {
  radio::DualSlopeParams assumed_params = radio::DualSlopeParams::highway();
  double frequency_hz = 5.89e9;
  radio::LinkBudget link_budget{};
  double assumed_tx_power_dbm = 20.0;

  // Entry check: an identity heard for the very first time (no history
  // before the window) whose first RSSI is already above this threshold
  // appeared mid-range instead of entering at the radio horizon.
  double entry_rssi_threshold_dbm = -85.0;
  // Variation check: maximum closing speed between two vehicles.
  double max_relative_speed_mps = 60.0;
  // Shadowing headroom added to the variation bound before flagging.
  double variation_margin_db = 12.0;
  // Fraction of implausible steps needed to flag.
  double violation_fraction = 0.10;
};

class RssiVariationDetector final : public sim::Detector {
 public:
  explicit RssiVariationDetector(RssiVariationOptions options = {});

  std::vector<IdentityId> detect(const sim::ObservationWindow& window,
                                 const sim::World& world) override;

  std::string_view name() const override { return "RSSI-variation"; }
  const RssiVariationOptions& options() const { return options_; }

 private:
  RssiVariationOptions options_;
  radio::DualSlopeModel assumed_model_;
};

}  // namespace vp::baseline
