// The decision rule Voiceprint's confirmation phase applies:
// a pair (i,j) is flagged as Sybil when D'(i,j) ≤ k·den + b.
#pragma once

namespace vp::ml {

struct LinearBoundary {
  double k = 0.0;  // slope in the density–distance plane
  double b = 0.0;  // intercept

  // Distance threshold at the given density.
  double threshold_at(double density) const { return k * density + b; }

  // True if the point is classified as a Sybil pair.
  bool is_sybil(double density, double distance) const {
    return distance <= threshold_at(density);
  }
};

}  // namespace vp::ml
