// Logistic regression on the density–distance plane — one of the
// alternative classifiers Section IV-C mentions ("perceptrons algorithm,
// linear classifier, logistic regression and support vector machines").
// Used by the classifier ablation bench.
#pragma once

#include <cstddef>

#include "ml/dataset.h"
#include "ml/linear_boundary.h"

namespace vp::ml {

struct LogisticOptions {
  double learning_rate = 0.1;
  std::size_t epochs = 2000;
  double l2 = 0.0;  // ridge penalty on the weights (not the bias)
  // Weight the two classes equally in the loss. Sybil pairs are a tiny
  // minority of the training pairs; without this the optimum is to
  // predict "normal" everywhere.
  bool balance_classes = true;
};

struct LogisticModel {
  // P(sybil | x) = σ(w_density·den + w_distance·dist + bias).
  double w_density = 0.0;
  double w_distance = 0.0;
  double bias = 0.0;
  LinearBoundary boundary;  // the P = 0.5 contour, as dist ≤ k·den + b

  double probability(double density, double distance) const;
};

class Logistic {
 public:
  // Full-batch gradient descent on standardised features. Requires both
  // classes present and the fitted distance weight negative (Sybil on the
  // small-distance side), mirroring Lda::fit.
  static LogisticModel fit(const Dataset& data,
                           const LogisticOptions& options = {});
};

}  // namespace vp::ml
