// Two-class Linear Discriminant Analysis on the density–distance plane —
// the method the paper uses to learn the slope k and intercept b of the
// detection boundary (Fig. 10: k = 0.00054, b = 0.0483 on their data).
#pragma once

#include "ml/dataset.h"
#include "ml/linear_boundary.h"

namespace vp::ml {

struct LdaModel {
  // Discriminant direction w and offset c: classify Sybil when
  // w·x <= c, with x = (density, distance).
  double w_density = 0.0;
  double w_distance = 0.0;
  double c = 0.0;
  LinearBoundary boundary;
};

class Lda {
 public:
  // Fits LDA with empirical class priors. Requires at least one point of
  // each class and a non-singular pooled within-class scatter matrix.
  static LdaModel fit(const Dataset& data);

  // Fits with explicit priors (p_sybil in (0,1)). A smaller Sybil prior
  // moves the boundary toward the Sybil cluster (fewer false positives).
  static LdaModel fit(const Dataset& data, double p_sybil);
};

}  // namespace vp::ml
