// Binary-classification metrics, including the paper's two evaluation
// metrics: detection rate (Eq. 10/12) and false positive rate (Eq. 11/13).
#pragma once

#include <cstddef>

#include "ml/dataset.h"
#include "ml/linear_boundary.h"

namespace vp::ml {

// Counts of a two-class confusion matrix. "Positive" is "Sybil pair".
struct Confusion {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;

  void add(bool truth, bool predicted);
  void merge(const Confusion& other);

  std::size_t total() const { return tp + fp + tn + fn; }

  // TP / (TP + FN); the paper's detection rate. 1.0 when no positives exist.
  double detection_rate() const;
  // FP / (FP + TN); the paper's false positive rate. 0.0 when no negatives.
  double false_positive_rate() const;
  double accuracy() const;   // requires total() > 0
  double precision() const;  // 1.0 when nothing was predicted positive
  double f1() const;
};

// Evaluates a linear boundary over a labelled dataset.
Confusion evaluate(const LinearBoundary& boundary, const Dataset& data);

// Area under the ROC curve for a scored dataset, where *smaller* scores
// indicate the positive (Sybil) class — the natural direction for DTW
// distances. Computed by the rank statistic (ties get half credit).
double auc_lower_is_positive(const Dataset& data);

}  // namespace vp::ml
