#include "ml/logistic.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace vp::ml {

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

double LogisticModel::probability(double density, double distance) const {
  return sigmoid(w_density * density + w_distance * distance + bias);
}

LogisticModel Logistic::fit(const Dataset& data,
                            const LogisticOptions& options) {
  VP_REQUIRE(data.size() >= 4);
  VP_REQUIRE(options.epochs > 0);
  VP_REQUIRE(options.learning_rate > 0.0);

  // Standardise features so one learning rate fits both axes (density spans
  // ~1e2, distance ~1e0).
  RunningStats den_stats, dist_stats;
  std::size_t n_pos = 0, n_neg = 0;
  for (const auto& p : data) {
    den_stats.add(p.density);
    dist_stats.add(p.distance);
    (p.sybil_pair ? n_pos : n_neg) += 1;
  }
  VP_REQUIRE(n_pos > 0 && n_neg > 0);
  const double w_pos =
      options.balance_classes
          ? static_cast<double>(data.size()) / (2.0 * static_cast<double>(n_pos))
          : 1.0;
  const double w_neg =
      options.balance_classes
          ? static_cast<double>(data.size()) / (2.0 * static_cast<double>(n_neg))
          : 1.0;
  const double den_mu = den_stats.mean();
  const double den_sd = std::max(den_stats.stddev(), 1e-9);
  const double dist_mu = dist_stats.mean();
  const double dist_sd = std::max(dist_stats.stddev(), 1e-9);

  double w1 = 0.0, w2 = 0.0, b = 0.0;
  const auto n = static_cast<double>(data.size());
  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    double g1 = 0.0, g2 = 0.0, gb = 0.0;
    for (const auto& p : data) {
      const double x1 = (p.density - den_mu) / den_sd;
      const double x2 = (p.distance - dist_mu) / dist_sd;
      const double y = p.sybil_pair ? 1.0 : 0.0;
      const double weight = p.sybil_pair ? w_pos : w_neg;
      const double err = weight * (sigmoid(w1 * x1 + w2 * x2 + b) - y);
      g1 += err * x1;
      g2 += err * x2;
      gb += err;
    }
    w1 -= options.learning_rate * (g1 / n + options.l2 * w1);
    w2 -= options.learning_rate * (g2 / n + options.l2 * w2);
    b -= options.learning_rate * gb / n;
  }

  // Undo the standardisation: w·(x−µ)/σ + b = (w/σ)·x + (b − w·µ/σ).
  LogisticModel model;
  model.w_density = w1 / den_sd;
  model.w_distance = w2 / dist_sd;
  model.bias = b - w1 * den_mu / den_sd - w2 * dist_mu / dist_sd;

  if (model.w_distance >= 0.0) {
    throw InvalidArgument(
        "logistic: fitted model does not place Sybil pairs on the "
        "small-distance side; training data is degenerate");
  }
  // P = 0.5 ⇔ w1·den + w2·dist + bias = 0 ⇔ dist = −(w1·den + bias)/w2.
  model.boundary.k = -model.w_density / model.w_distance;
  model.boundary.b = -model.bias / model.w_distance;
  return model;
}

}  // namespace vp::ml
