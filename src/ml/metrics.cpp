#include "ml/metrics.h"

#include <algorithm>
#include <vector>

#include "common/error.h"

namespace vp::ml {

void Confusion::add(bool truth, bool predicted) {
  if (truth) {
    predicted ? ++tp : ++fn;
  } else {
    predicted ? ++fp : ++tn;
  }
}

void Confusion::merge(const Confusion& other) {
  tp += other.tp;
  fp += other.fp;
  tn += other.tn;
  fn += other.fn;
}

double Confusion::detection_rate() const {
  const std::size_t positives = tp + fn;
  if (positives == 0) return 1.0;
  return static_cast<double>(tp) / static_cast<double>(positives);
}

double Confusion::false_positive_rate() const {
  const std::size_t negatives = fp + tn;
  if (negatives == 0) return 0.0;
  return static_cast<double>(fp) / static_cast<double>(negatives);
}

double Confusion::accuracy() const {
  VP_REQUIRE(total() > 0);
  return static_cast<double>(tp + tn) / static_cast<double>(total());
}

double Confusion::precision() const {
  const std::size_t predicted = tp + fp;
  if (predicted == 0) return 1.0;
  return static_cast<double>(tp) / static_cast<double>(predicted);
}

double Confusion::f1() const {
  const double p = precision();
  const double r = detection_rate();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

Confusion evaluate(const LinearBoundary& boundary, const Dataset& data) {
  Confusion c;
  for (const auto& point : data) {
    c.add(point.sybil_pair, boundary.is_sybil(point.density, point.distance));
  }
  return c;
}

double auc_lower_is_positive(const Dataset& data) {
  std::vector<double> pos, neg;
  for (const auto& p : data) {
    (p.sybil_pair ? pos : neg).push_back(p.distance);
  }
  VP_REQUIRE(!pos.empty() && !neg.empty());
  // AUC = P(score_pos < score_neg) + ½ P(equal), via sorting + two-pointer
  // accumulation over the negative scores.
  std::sort(neg.begin(), neg.end());
  double wins = 0.0;
  for (double s : pos) {
    const auto lower =
        static_cast<double>(std::lower_bound(neg.begin(), neg.end(), s) -
                            neg.begin());
    const auto upper =
        static_cast<double>(std::upper_bound(neg.begin(), neg.end(), s) -
                            neg.begin());
    // `lower` negatives are strictly below s (losses), ties in between.
    wins += (static_cast<double>(neg.size()) - upper) + 0.5 * (upper - lower);
  }
  return wins / (static_cast<double>(pos.size()) *
                 static_cast<double>(neg.size()));
}

}  // namespace vp::ml
