#include "ml/perceptron.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"

namespace vp::ml {

namespace {

struct Weights {
  double w1 = 0.0;
  double w2 = 0.0;
  double b = 0.0;
};

std::size_t count_errors(const Dataset& data, const Weights& w, double den_mu,
                         double den_sd, double dist_mu, double dist_sd) {
  std::size_t errors = 0;
  for (const auto& p : data) {
    const double x1 = (p.density - den_mu) / den_sd;
    const double x2 = (p.distance - dist_mu) / dist_sd;
    const double score = w.w1 * x1 + w.w2 * x2 + w.b;
    const bool predicted = score >= 0.0;
    if (predicted != p.sybil_pair) ++errors;
  }
  return errors;
}

}  // namespace

PerceptronModel Perceptron::fit(const Dataset& data,
                                const PerceptronOptions& options) {
  VP_REQUIRE(data.size() >= 4);
  VP_REQUIRE(options.epochs > 0);

  RunningStats den_stats, dist_stats;
  bool has_pos = false, has_neg = false;
  for (const auto& p : data) {
    den_stats.add(p.density);
    dist_stats.add(p.distance);
    (p.sybil_pair ? has_pos : has_neg) = true;
  }
  VP_REQUIRE(has_pos && has_neg);
  const double den_mu = den_stats.mean();
  const double den_sd = std::max(den_stats.stddev(), 1e-9);
  const double dist_mu = dist_stats.mean();
  const double dist_sd = std::max(dist_stats.stddev(), 1e-9);

  Weights w;
  // Start from the class-mean direction so the pocket has a sane baseline.
  w.w2 = -1.0;
  Weights pocket = w;
  std::size_t pocket_errors =
      count_errors(data, pocket, den_mu, den_sd, dist_mu, dist_sd);

  Rng rng(options.shuffle_seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (std::size_t idx : order) {
      const auto& p = data[idx];
      const double x1 = (p.density - den_mu) / den_sd;
      const double x2 = (p.distance - dist_mu) / dist_sd;
      const double target = p.sybil_pair ? 1.0 : -1.0;
      const double score = w.w1 * x1 + w.w2 * x2 + w.b;
      if (target * score <= 0.0) {
        w.w1 += options.learning_rate * target * x1;
        w.w2 += options.learning_rate * target * x2;
        w.b += options.learning_rate * target;
        const std::size_t errors =
            count_errors(data, w, den_mu, den_sd, dist_mu, dist_sd);
        if (errors < pocket_errors) {
          pocket = w;
          pocket_errors = errors;
        }
      }
    }
  }

  PerceptronModel model;
  model.w_density = pocket.w1 / den_sd;
  model.w_distance = pocket.w2 / dist_sd;
  model.bias =
      pocket.b - pocket.w1 * den_mu / den_sd - pocket.w2 * dist_mu / dist_sd;
  model.training_errors = pocket_errors;

  if (model.w_distance >= 0.0) {
    throw InvalidArgument(
        "perceptron: fitted model does not place Sybil pairs on the "
        "small-distance side; training data is degenerate");
  }
  model.boundary.k = -model.w_density / model.w_distance;
  model.boundary.b = -model.bias / model.w_distance;
  return model;
}

}  // namespace vp::ml
