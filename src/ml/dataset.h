// Training data for the threshold classifiers (Section IV-C / Fig. 10).
//
// Each point lives in the density–distance plane: the locally estimated
// traffic density and one min–max-normalised pairwise DTW distance. The
// label says whether the pair was truly emitted by the same physical radio
// (a Sybil pair).
#pragma once

#include <vector>

namespace vp::ml {

struct LabeledPoint {
  double density = 0.0;   // vehicles per km (Eq. 9 estimate)
  double distance = 0.0;  // normalised DTW distance in [0, 1]
  bool sybil_pair = false;
};

using Dataset = std::vector<LabeledPoint>;

}  // namespace vp::ml
