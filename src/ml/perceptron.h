// Pocket perceptron on the density–distance plane — the simplest of the
// linear classifiers Section IV-C names; included for the ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ml/dataset.h"
#include "ml/linear_boundary.h"

namespace vp::ml {

struct PerceptronOptions {
  std::size_t epochs = 200;
  double learning_rate = 1.0;
  std::uint64_t shuffle_seed = 1;  // presentation order per epoch
};

struct PerceptronModel {
  double w_density = 0.0;
  double w_distance = 0.0;
  double bias = 0.0;
  LinearBoundary boundary;
  std::size_t training_errors = 0;  // errors of the pocketed weights
};

class Perceptron {
 public:
  // Pocket algorithm: keeps the weight vector with the fewest training
  // errors seen, so it converges to something useful even when the data is
  // not linearly separable (ours is not, Fig. 10 shows overlap).
  static PerceptronModel fit(const Dataset& data,
                             const PerceptronOptions& options = {});
};

}  // namespace vp::ml
