#include "ml/lda.h"

#include <cmath>

#include "common/error.h"

namespace vp::ml {

namespace {

struct Vec2 {
  double a = 0.0;
  double b = 0.0;
};

struct Mat2 {
  // [ xx xy ]
  // [ xy yy ]  (symmetric scatter matrix)
  double xx = 0.0;
  double xy = 0.0;
  double yy = 0.0;

  Vec2 solve(const Vec2& rhs) const {
    const double det = xx * yy - xy * xy;
    if (std::fabs(det) < 1e-15) {
      throw InvalidArgument("LDA: singular within-class scatter matrix");
    }
    return {(yy * rhs.a - xy * rhs.b) / det, (xx * rhs.b - xy * rhs.a) / det};
  }
};

}  // namespace

LdaModel Lda::fit(const Dataset& data) {
  std::size_t n_sybil = 0;
  for (const auto& p : data) n_sybil += p.sybil_pair ? 1 : 0;
  VP_REQUIRE(n_sybil > 0 && n_sybil < data.size());
  return fit(data, static_cast<double>(n_sybil) /
                       static_cast<double>(data.size()));
}

LdaModel Lda::fit(const Dataset& data, double p_sybil) {
  VP_REQUIRE(p_sybil > 0.0 && p_sybil < 1.0);
  std::size_t n1 = 0, n0 = 0;
  Vec2 m1, m0;
  for (const auto& p : data) {
    if (p.sybil_pair) {
      ++n1;
      m1.a += p.density;
      m1.b += p.distance;
    } else {
      ++n0;
      m0.a += p.density;
      m0.b += p.distance;
    }
  }
  VP_REQUIRE(n1 >= 2 && n0 >= 2);
  m1.a /= static_cast<double>(n1);
  m1.b /= static_cast<double>(n1);
  m0.a /= static_cast<double>(n0);
  m0.b /= static_cast<double>(n0);

  Mat2 s0, s1;
  for (const auto& p : data) {
    const Vec2& m = p.sybil_pair ? m1 : m0;
    Mat2& s = p.sybil_pair ? s1 : s0;
    const double dx = p.density - m.a;
    const double dy = p.distance - m.b;
    s.xx += dx * dx;
    s.xy += dx * dy;
    s.yy += dy * dy;
  }
  // Class-BALANCED covariance pooling: Sybil pairs are a tiny minority
  // (one attacker per ~20 vehicles), so count-weighted pooling would let
  // the majority class's much wider scatter drown the Sybil cluster and
  // tilt the discriminant into nonsense. Averaging the per-class
  // covariances weights both shapes equally.
  const auto d0 = static_cast<double>(n0 - 1);
  const auto d1 = static_cast<double>(n1 - 1);
  Mat2 sigma{0.5 * (s0.xx / d0 + s1.xx / d1),
             0.5 * (s0.xy / d0 + s1.xy / d1),
             0.5 * (s0.yy / d0 + s1.yy / d1)};

  // Discriminant direction w = Σ⁻¹ (m1 − m0); Sybil side is w·x ≥ c with
  // c = ½ w·(m1 + m0) − ln(p1/p0).
  Vec2 w = sigma.solve({m1.a - m0.a, m1.b - m0.b});
  double c = 0.5 * (w.a * (m1.a + m0.a) + w.b * (m1.b + m0.b)) -
             std::log(p_sybil / (1.0 - p_sybil));

  // The Sybil rule only makes sense as "small distance ⇒ Sybil", i.e. the
  // distance coefficient of w (which points from the normal mean to the
  // Sybil mean through Σ⁻¹) must be negative. Degenerate fits are rejected
  // rather than silently producing an inverted detector.
  if (w.b >= 0.0) {
    throw InvalidArgument(
        "LDA: fitted discriminant does not place Sybil pairs on the "
        "small-distance side; training data is degenerate");
  }

  LdaModel model;
  model.w_density = w.a;
  model.w_distance = w.b;
  model.c = c;
  // w.a*den + w.b*dist >= c with w.b < 0  ⇔  dist <= (c − w.a·den)/w.b.
  model.boundary.k = -w.a / w.b;
  model.boundary.b = c / w.b;
  return model;
}

}  // namespace vp::ml
