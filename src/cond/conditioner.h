// Deterministic fixed-point RSSI conditioning (DESIGN.md §15).
//
// Raw RSSI carries spikes, quantisation steps and receiver glitches
// straight into the DTW comparison — the paper's own field test (§5)
// shows it, and the chaos harness can push verdict divergence to its
// ceilings with nothing in the pipeline to absorb corruption. The
// Conditioner is the automotive Cortex-M-class answer: a windowed
// Hampel median/MAD outlier stage (reject / clamp / pass per sample)
// feeding an adaptive EMA whose smoothing factor tightens when the
// window's MAD says the channel is noisy.
//
// Everything is integer arithmetic in fixed point:
//
//   * RSSI values:      Q19.12 in int32 (4096 == 1 dB; the validated
//                       [-150, 50] dBm contract uses 20 magnitude bits).
//   * Hampel k factors: Q8 in int32 (256 == 1.0).
//   * EMA alpha:        Q15 in int32 (32768 == 1.0).
//
// No floating point touches the filter path, so outputs are
// bit-identical across platforms, compilers, optimisation levels and
// SIMD modes — the same property the scalar/AVX2 DTW kernels promise,
// extended down to the first sample the engine stores. The only float
// steps are the boundary conversions to_q12/from_q12, which are exact
// dyadic operations (from_q12 in particular is value/4096.0, exact in
// double for the whole int32 range).
//
// Allocation-free: per-channel state is a fixed std::array ring
// (kMaxWindow samples) plus two registers; the median/MAD scratch lives
// on the stack of process(). Conservation: every sample offered is
// counted exactly once as passed, clamped or rejected — the engine
// surfaces the counters as cond.* metrics under the
// `conservation.cond.samples` law checked by the §12 HealthMonitor.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace vp::cond {

// Hampel window ceiling; windows are odd so the median is one element.
inline constexpr std::size_t kMaxWindow = 31;

inline constexpr int kValueFractionBits = 12;               // Q19.12
inline constexpr std::int32_t kOneQ12 = 1 << kValueFractionBits;
inline constexpr int kFactorFractionBits = 8;               // Q8
inline constexpr std::int32_t kOneQ8 = 1 << kFactorFractionBits;
inline constexpr int kAlphaFractionBits = 15;               // Q15
inline constexpr std::int32_t kOneQ15 = 1 << kAlphaFractionBits;

// dBm → Q19.12, round half away from zero; saturates far outside the
// validated RSSI contract (the engine's validation front runs first, so
// saturation is unreachable in the serving path — it exists so the
// conversion itself is total and UB-free on any finite double).
std::int32_t to_q12(double v);

// Q19.12 → dBm. Exact: a dyadic division representable in double.
inline double from_q12(std::int32_t q) {
  return static_cast<double>(q) / static_cast<double>(kOneQ12);
}

struct CondConfig {
  // Hampel window: odd, in [3, kMaxWindow]. The verdict for a sample is
  // judged against the median/MAD of the previous `window` accepted
  // samples (the sample itself stays out of its own baseline).
  std::size_t window = 7;
  // Deviation thresholds as multiples of the window MAD (Q8). A sample
  // deviating more than reject_k is shed outright; more than clamp_k is
  // winsorised to median ± clamp_k·MAD. Defaults are the classic Hampel
  // 3·MAD clamp with an 8·MAD hard-reject rail.
  std::int32_t clamp_k_q8 = 3 * kOneQ8;
  std::int32_t reject_k_q8 = 8 * kOneQ8;
  // MAD floor (Q12): a constant window has MAD 0, which would make any
  // deviation infinite in k units. Real receivers report RSSI quantised
  // (the simulator's radios round to 1 dB), so quiet windows hit MAD 0
  // routinely — the floor must be at least the reporting granularity or
  // ordinary 1-3 dB sample-to-sample motion gets hard-rejected.
  std::int32_t mad_floor_q12 = kOneQ12;
  // Anti-freeze escape: a hard reject leaves every register untouched,
  // which is right for a burst of garbage but deadly for a genuine level
  // shift (deep fade, shadowing step) — the stale baseline would reject
  // the channel's new reality forever. After `reject_limit` consecutive
  // rejects the next deviating sample re-seeds the channel: the window
  // restarts from it and the EMA snaps to it (counted as a pass).
  std::uint32_t reject_limit = 8;
  // Adaptive EMA range (Q15): alpha = alpha_max at MAD 0 falling
  // linearly to alpha_min at MAD >= mad_ref. alpha_max defaults to 1.0,
  // so a quiet channel passes through unsmoothed and only a noisy one
  // pays the lag.
  std::int32_t ema_alpha_max_q15 = kOneQ15;
  std::int32_t ema_alpha_min_q15 = kOneQ15 / 4;
  std::int32_t mad_ref_q12 = 6 * kOneQ12;
};

// VP_REQUIREs the config contract (odd window in range, 0 < clamp_k <=
// reject_k, positive floor/ref, 0 < alpha_min <= alpha_max <= 1).
void validate(const CondConfig& config);

// Per-sample Hampel verdict.
enum class Verdict : std::uint8_t { kPass = 0, kClamp = 1, kReject = 2 };

struct Sample {
  Verdict verdict = Verdict::kPass;
  // EMA output after this sample (unchanged from the previous output on
  // kReject — a rejected sample leaves every register untouched).
  std::int32_t conditioned_q12 = 0;
};

// Median of Q12 samples (odd count; insertion sort on a stack copy).
std::int32_t median_q12(std::span<const std::int32_t> values);
// Median absolute deviation around `median` (same odd count).
std::int32_t mad_q12(std::span<const std::int32_t> values,
                     std::int32_t median);

// One RSSI channel's filter state: the Hampel window ring and the EMA
// register. Fixed-size, trivially copyable, checkpointable — the VPCK v3
// identity record carries exactly (window samples oldest-first, ema
// register, init flag) so a restored channel is bit-identical mid-filter.
class Conditioner {
 public:
  // Feeds one quantised sample. Until the window has filled, samples
  // pass through (the baseline is not yet trustworthy); after that the
  // Hampel verdict applies. Accepted (pass/clamp) samples enter the
  // window and advance the EMA; rejected samples change nothing.
  Sample process(std::int32_t x_q12, const CondConfig& config);

  // --- Checkpoint access (stream/checkpoint.cpp) ----------------------
  std::size_t window_count() const { return count_; }
  // i in [0, window_count()), oldest first.
  std::int32_t window_sample(std::size_t i) const {
    return window_[(head_ + i) % kMaxWindow];
  }
  std::int32_t ema_q12() const { return ema_q12_; }
  bool ema_initialized() const { return ema_init_; }
  std::uint32_t reject_streak() const { return reject_streak_; }
  // Restores the exact state captured by the accessors above. `samples`
  // are oldest-first, size <= min(config.window, kMaxWindow).
  void restore(std::span<const std::int32_t> samples, std::int32_t ema_q12,
               bool ema_initialized, std::uint32_t reject_streak);

 private:
  void push(std::int32_t x_q12, std::size_t window);
  void ema_update(std::int32_t x_q12, std::int32_t mad_q12,
                  const CondConfig& config);

  std::array<std::int32_t, kMaxWindow> window_{};
  std::size_t head_ = 0;   // index of the oldest sample
  std::size_t count_ = 0;  // samples currently in the window
  std::int32_t ema_q12_ = 0;
  bool ema_init_ = false;
  std::uint32_t reject_streak_ = 0;  // consecutive hard rejects so far
};

}  // namespace vp::cond
