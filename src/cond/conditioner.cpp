#include "cond/conditioner.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/error.h"

namespace vp::cond {

namespace {

// Saturation rail for to_q12: ±65536 dB in Q19.12. Far outside any
// physical RSSI (the engine's validation contract is [-150, 50] dBm),
// but it bounds |a - b| to 2^29 so every difference taken inside the
// filter fits an int32 with headroom.
constexpr std::int32_t kMaxAbsQ12 = 1 << 28;

// Round-half-away-from-zero shift by kAlphaFractionBits, exact for
// alpha == 1.0 (a full step reproduces the input bit-for-bit).
std::int64_t alpha_round(std::int64_t step) {
  constexpr std::int64_t half = std::int64_t{1} << (kAlphaFractionBits - 1);
  return step >= 0 ? (step + half) >> kAlphaFractionBits
                   : -((-step + half) >> kAlphaFractionBits);
}

}  // namespace

std::int32_t to_q12(double v) {
  const double scaled = v * static_cast<double>(kOneQ12);
  if (std::isnan(scaled)) return 0;
  if (scaled >= static_cast<double>(kMaxAbsQ12)) return kMaxAbsQ12;
  if (scaled <= -static_cast<double>(kMaxAbsQ12)) return -kMaxAbsQ12;
  return static_cast<std::int32_t>(std::llround(scaled));
}

void validate(const CondConfig& config) {
  VP_REQUIRE(config.window >= 3 && config.window <= kMaxWindow);
  VP_REQUIRE(config.window % 2 == 1);
  VP_REQUIRE(config.clamp_k_q8 > 0);
  VP_REQUIRE(config.reject_k_q8 >= config.clamp_k_q8);
  // 256x MAD is already "never fires"; the bound keeps every k·MAD
  // product comfortably inside int64.
  VP_REQUIRE(config.reject_k_q8 <= 256 * kOneQ8);
  VP_REQUIRE(config.mad_floor_q12 > 0);
  VP_REQUIRE(config.reject_limit >= 1);
  VP_REQUIRE(config.mad_ref_q12 > 0);
  VP_REQUIRE(config.ema_alpha_min_q15 > 0);
  VP_REQUIRE(config.ema_alpha_max_q15 >= config.ema_alpha_min_q15);
  VP_REQUIRE(config.ema_alpha_max_q15 <= kOneQ15);
}

std::int32_t median_q12(std::span<const std::int32_t> values) {
  VP_REQUIRE(!values.empty() && values.size() <= kMaxWindow);
  std::array<std::int32_t, kMaxWindow> sorted{};
  // Insertion sort: the windows are tiny (<= 31) and nearly sorted runs
  // are common, so this beats introsort setup and never allocates.
  std::size_t n = 0;
  for (const std::int32_t v : values) {
    std::size_t i = n;
    while (i > 0 && sorted[i - 1] > v) {
      sorted[i] = sorted[i - 1];
      --i;
    }
    sorted[i] = v;
    ++n;
  }
  // Odd counts by contract; an even count takes the lower middle, which
  // keeps the function total without a rounding choice in Q12.
  return sorted[n / 2];
}

std::int32_t mad_q12(std::span<const std::int32_t> values,
                     std::int32_t median) {
  VP_REQUIRE(!values.empty() && values.size() <= kMaxWindow);
  std::array<std::int32_t, kMaxWindow> devs{};
  for (std::size_t i = 0; i < values.size(); ++i) {
    devs[i] = static_cast<std::int32_t>(
        std::llabs(static_cast<std::int64_t>(values[i]) - median));
  }
  return median_q12(std::span<const std::int32_t>(devs.data(), values.size()));
}

void Conditioner::push(std::int32_t x_q12, std::size_t window) {
  if (count_ >= window) {
    // Drop the oldest, then append — the generic form works even when
    // the logical window is smaller than the backing array.
    head_ = (head_ + 1) % kMaxWindow;
    --count_;
  }
  window_[(head_ + count_) % kMaxWindow] = x_q12;
  ++count_;
}

void Conditioner::ema_update(std::int32_t x_q12, std::int32_t mad_q12,
                             const CondConfig& config) {
  if (!ema_init_) {
    ema_q12_ = x_q12;
    ema_init_ = true;
    return;
  }
  // alpha falls linearly from alpha_max (MAD 0) to alpha_min (MAD >=
  // mad_ref): the noisier the window says the channel is, the harder
  // the smoother leans on history. Integer division truncates toward
  // zero; both operands are non-negative here so the result is exact
  // floor division — deterministic everywhere.
  const std::int64_t mad_c = std::min<std::int64_t>(mad_q12, config.mad_ref_q12);
  const std::int64_t alpha_span =
      static_cast<std::int64_t>(config.ema_alpha_max_q15) -
      config.ema_alpha_min_q15;
  const std::int64_t alpha =
      config.ema_alpha_max_q15 - (alpha_span * mad_c) / config.mad_ref_q12;
  const std::int64_t step =
      alpha * (static_cast<std::int64_t>(x_q12) - ema_q12_);
  const std::int64_t next =
      static_cast<std::int64_t>(ema_q12_) + alpha_round(step);
  ema_q12_ = static_cast<std::int32_t>(std::clamp<std::int64_t>(
      next, std::numeric_limits<std::int32_t>::min(),
      std::numeric_limits<std::int32_t>::max()));
}

Sample Conditioner::process(std::int32_t x_q12, const CondConfig& config) {
  Sample out;
  if (count_ < config.window) {
    // Warmup: the baseline is not yet trustworthy, so every sample is
    // accepted and the EMA runs at alpha_max (quiet-channel setting).
    push(x_q12, config.window);
    ema_update(x_q12, 0, config);
    out.verdict = Verdict::kPass;
    out.conditioned_q12 = ema_q12_;
    return out;
  }

  // Judge the sample against the previous window — it must not vote on
  // its own baseline, or a slow-ramp attacker drags the median along.
  std::array<std::int32_t, kMaxWindow> scratch{};
  for (std::size_t i = 0; i < config.window; ++i) {
    scratch[i] = window_[(head_ + i) % kMaxWindow];
  }
  const std::span<const std::int32_t> win(scratch.data(), config.window);
  const std::int32_t med = median_q12(win);
  const std::int32_t mad_eff =
      std::max(mad_q12(win, med), config.mad_floor_q12);

  const std::int64_t dev =
      std::llabs(static_cast<std::int64_t>(x_q12) - med);
  const std::int64_t reject_thr =
      (static_cast<std::int64_t>(config.reject_k_q8) * mad_eff) >>
      kFactorFractionBits;
  if (dev > reject_thr) {
    if (reject_streak_ < config.reject_limit) {
      // Hard outlier: shed, and leave every register untouched so a
      // burst of garbage cannot walk the baseline anywhere.
      ++reject_streak_;
      out.verdict = Verdict::kReject;
      out.conditioned_q12 = ema_q12_;
      return out;
    }
    // The streak is exhausted: this many consecutive "outliers" IS the
    // channel now (a deep fade or shadowing step, not a glitch burst).
    // Re-seed from this sample — window restarted, EMA snapped — so the
    // filter tracks the new level instead of rejecting it forever.
    head_ = 0;
    count_ = 0;
    reject_streak_ = 0;
    push(x_q12, config.window);
    ema_init_ = false;
    ema_update(x_q12, 0, config);
    out.verdict = Verdict::kPass;
    out.conditioned_q12 = ema_q12_;
    return out;
  }
  reject_streak_ = 0;  // any accepted sample breaks the streak

  const std::int64_t clamp_thr =
      (static_cast<std::int64_t>(config.clamp_k_q8) * mad_eff) >>
      kFactorFractionBits;
  std::int32_t accepted = x_q12;
  if (dev > clamp_thr) {
    // Winsorise: the sample carries information (the channel did move)
    // but its magnitude is capped at the clamp rail.
    const std::int64_t rail = x_q12 > med
                                  ? static_cast<std::int64_t>(med) + clamp_thr
                                  : static_cast<std::int64_t>(med) - clamp_thr;
    accepted = static_cast<std::int32_t>(std::clamp<std::int64_t>(
        rail, -kMaxAbsQ12, kMaxAbsQ12));
    out.verdict = Verdict::kClamp;
  } else {
    out.verdict = Verdict::kPass;
  }
  push(accepted, config.window);
  ema_update(accepted, mad_eff, config);
  out.conditioned_q12 = ema_q12_;
  return out;
}

void Conditioner::restore(std::span<const std::int32_t> samples,
                          std::int32_t ema_q12, bool ema_initialized,
                          std::uint32_t reject_streak) {
  VP_REQUIRE(samples.size() <= kMaxWindow);
  head_ = 0;
  count_ = samples.size();
  for (std::size_t i = 0; i < samples.size(); ++i) window_[i] = samples[i];
  ema_q12_ = ema_q12;
  ema_init_ = ema_initialized;
  reject_streak_ = reject_streak;
}

}  // namespace vp::cond
