// Scenario configuration. The defaults are Table V of the paper plus its
// surrounding prose (Section V-A): a 2 km, 4-lane bi-directional highway;
// 5% malicious vehicles, each fabricating 3–6 Sybil identities; 10 Hz
// beacons; per-identity TX power drawn once from 17–23 dBm; epoch mobility
// with λe = 0.2 s⁻¹, speeds N(25, 5) m/s; 20 s observation windows and a
// propagation environment that optionally drifts every 30 s (Fig. 11b).
#pragma once

#include <cstdint>
#include <string>

#include "mac/phy.h"
#include "mobility/epoch_mobility.h"
#include "mobility/highway.h"
#include "radio/dual_slope.h"
#include "radio/receiver.h"

namespace vp::sim {

struct ScenarioConfig {
  // --- Road and traffic --------------------------------------------------
  mob::HighwayConfig highway{};              // 2 km, 2 lanes/direction, 3.6 m
  double density_per_km = 50.0;              // Table V: 10–100 vhls/km
  double malicious_fraction = 0.05;          // 5% of vehicles
  int sybil_per_malicious_min = 3;
  int sybil_per_malicious_max = 6;
  mob::EpochMobilityParams mobility{};       // λe=0.2, N(25,5) m/s

  // --- Radio and MAC -----------------------------------------------------
  double frequency_hz = 5.89e9;              // CH 178
  double tx_power_min_dbm = 17.0;            // drawn once per identity
  double tx_power_max_dbm = 23.0;
  radio::LinkBudget link_budget{};           // antenna gains (0 dBi default)
  mac::PhyParams phy{};                      // 3 Mbps, slot 13 µs, SIFS 32 µs
  radio::ReceiverConfig receiver{};          // −95 dBm sensitivity
  double beacon_rate_hz = 10.0;
  std::size_t payload_bytes = 500;
  // --- Service channel (Section VII future work) --------------------------
  // When > 0, every identity additionally beacons at this rate on the SCH —
  // a second 10 MHz channel with its own contention domain — and receivers
  // fold those samples into the same per-identity RSSI series, filling the
  // observation window proportionally faster. (Modelled as a second
  // transceiver; DSRC sync-interval channel switching is not simulated.)
  double sch_beacon_rate_hz = 0.0;
  std::size_t sch_payload_bytes = 200;  // samples need no full safety payload
  // Reception is not evaluated beyond this range (mean power there is far
  // below sensitivity for every Table IV environment); purely a CPU guard.
  double max_reception_range_m = 800.0;

  // --- Propagation environment -------------------------------------------
  radio::DualSlopeParams base_environment = radio::DualSlopeParams::highway();
  // Shadowing evolves per physical radio pair with this coherence time —
  // the mechanism behind Observation 3 (identities of the same radio share
  // one realised fading process; distinct radios do not).
  double shadowing_coherence_time_s = 1.0;
  // i.i.d. per-packet residual (measurement noise + residual fast fading),
  // dB. Frame-level RSSI is averaged over >1 ms of symbols, so its
  // repeatability is sub-dB on real hardware.
  double measurement_noise_db = 0.5;
  bool model_change = false;                 // Fig. 11a (off) vs 11b (on)
  double model_change_period_s = 30.0;       // Table V
  std::size_t model_cycle_steps = 4;

  // --- Attack payload ----------------------------------------------------
  // Sybil identities claim positions offset along the road from the real
  // vehicle by a per-identity constant in ±[min, max].
  double sybil_offset_min_m = 20.0;
  double sybil_offset_max_m = 200.0;
  double gps_noise_m = 2.5;                  // Table II horizontal accuracy

  // How the attacker plays its TX power (Assumption 3 vs the Section VII
  // "smart attack with power control" the paper leaves as an open problem):
  //   kConstant       — every identity keeps its initial power (Assumption 3)
  //   kPerPacket      — the attacker re-draws each Sybil beacon's power
  //                     from [tx_power_min, tx_power_max] per packet
  enum class AttackerPowerMode { kConstant, kPerPacket };
  AttackerPowerMode attacker_power_mode = AttackerPowerMode::kConstant;

  // How the attacker times its Sybil beacons:
  //   kBurst     — all identities drain the one MAC queue back-to-back
  //                (what a single radio naturally does)
  //   kStaggered — the attacker deliberately spreads its identities'
  //                beacons across the beacon period, so their samples ride
  //                different instants of the shadowing process
  enum class SybilTimingMode { kBurst, kStaggered };
  SybilTimingMode sybil_timing_mode = SybilTimingMode::kBurst;

  // When > 0, Sybil identities stay silent until this simulation time, so
  // the attack *starts* mid-run — the situation entry-plausibility checks
  // (Bouassida-style, baseline/rssi_variation.h) are designed to catch: a
  // brand-new identity popping up mid-range at full signal strength.
  double attack_start_time_s = 0.0;

  // --- Detection-related timing (consumed by the harness) -----------------
  double sim_time_s = 100.0;
  double observation_time_s = 20.0;          // Table V
  double detection_period_s = 20.0;
  double density_estimation_period_s = 10.0;
  double max_transmission_range_m = 400.0;   // Dist_max of Eq. 9

  std::uint64_t seed = 1;

  // --- Derived -------------------------------------------------------------
  std::size_t vehicle_count() const;
  std::size_t malicious_count() const;

  // Throws InvalidArgument on inconsistent settings.
  void validate() const;

  // A human-readable dump of the Table V parameters (printed by benches).
  std::string describe() const;
};

}  // namespace vp::sim
