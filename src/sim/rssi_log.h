// The collection phase's storage (Section IV-C-1): every vehicle records,
// per received identity, the reception time, measured RSSI and the claimed
// payload fields. Voiceprint itself only needs the ⟨ID, RSSI⟩ 2-tuples; the
// claimed positions are kept for the CPVSAD baseline, which verifies them.
#pragma once

#include <map>
#include <vector>

#include "common/ids.h"
#include "mobility/state.h"
#include "timeseries/series.h"

namespace vp::sim {

struct BeaconRecord {
  double time_s = 0.0;
  double rssi_dbm = 0.0;
  mob::Vec2 claimed_position;
  double claimed_speed_mps = 0.0;
  // The "TX power used" field of the WSMP N-header (IEEE 1609.3). Honest
  // for everyone in this simulator; position-verification baselines rely
  // on it, Voiceprint never reads it.
  double declared_tx_power_dbm = 20.0;
};

class RssiLog {
 public:
  void record(IdentityId id, const BeaconRecord& record);

  // Identities with at least `min_samples` records in [t0, t1).
  std::vector<IdentityId> identities_heard(double t0, double t1,
                                           std::size_t min_samples) const;

  // RSSI time series of one identity restricted to [t0, t1); empty series
  // if the identity was never heard there.
  ts::Series rssi_series(IdentityId id, double t0, double t1) const;

  // All records of one identity in [t0, t1).
  std::vector<BeaconRecord> records(IdentityId id, double t0, double t1) const;

  std::size_t sample_count(IdentityId id, double t0, double t1) const;
  std::size_t total_records() const { return total_; }

 private:
  std::map<IdentityId, std::vector<BeaconRecord>> entries_;
  std::size_t total_ = 0;
};

}  // namespace vp::sim
