// The simulated VANET (the NS-2.34 stand-in): a highway of beaconing
// vehicles — some malicious, each with forged Sybil identities — over a
// shared CSMA/CA channel with a (possibly drifting) dual-slope propagation
// environment. After run(), per-vehicle RSSI logs can be cut into the
// ObservationWindows the detectors consume.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/event_queue.h"
#include "common/ids.h"
#include "common/rng.h"
#include "mac/channel.h"
#include "mobility/highway.h"
#include "radio/fading.h"
#include "radio/propagation.h"
#include "sim/node.h"
#include "sim/observation.h"
#include "sim/scenario.h"

namespace vp::sim {

// Who really owns each identity — the evaluation oracle (never visible to
// detectors).
class GroundTruth {
 public:
  struct Info {
    NodeId owner = kInvalidNode;
    bool sybil = false;
    bool owner_malicious = false;
  };

  void add(IdentityId id, Info info);
  const Info& info(IdentityId id) const;
  bool known(IdentityId id) const;

  // Sybil identities and the genuine identity of a malicious node both
  // count as illegitimate (Eq. 10's N_m + Σ N_s).
  bool is_illegitimate(IdentityId id) const;

  // True if both identities are emitted by the same physical radio — the
  // ground truth for a "Sybil pair" in classifier training (Fig. 10).
  bool same_radio(IdentityId a, IdentityId b) const;

  std::size_t identity_count() const { return infos_.size(); }

 private:
  std::map<IdentityId, Info> infos_;
};

struct WorldStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_below_sensitivity = 0;
  std::uint64_t frames_collided = 0;
  std::uint64_t frames_half_duplex_missed = 0;
  std::uint64_t beacon_queue_drops = 0;
};

class World {
 public:
  // Builds road, vehicles, identities, MACs and schedules the beacon
  // processes. Throws InvalidArgument if the config does not validate.
  explicit World(ScenarioConfig config);

  // Immovable: MACs and queued events hold references into this object.
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  World(World&&) = delete;
  World& operator=(World&&) = delete;

  // Runs the full scenario (callable once).
  void run();

  double now() const { return queue_.now(); }
  const ScenarioConfig& config() const { return config_; }
  const mob::Highway& highway() const { return highway_; }
  const GroundTruth& truth() const { return truth_; }
  const radio::PropagationModel& propagation() const { return *model_; }
  const WorldStats& stats() const { return stats_; }

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  Node& node(NodeId id);
  const Node& node(NodeId id) const;

  // Ids of all non-malicious vehicles (the observers the paper averages
  // over).
  std::vector<NodeId> normal_node_ids() const;

  // Detection instants: the end of each detection period that fits in the
  // simulation (t = obs, obs+period, ...).
  std::vector<double> detection_times() const;

  // Cuts the observer's log into an observation window over [t1−obs, t1),
  // computing the Eq. 9 density estimate over the trailing estimation
  // period. Identities with fewer than `min_samples` packets are ignored
  // (too little data to form a series).
  ObservationWindow observe(NodeId observer, double t1,
                            std::size_t min_samples = 4) const;

 private:
  void build_model();
  void build_nodes();
  // `sch` selects the service-channel path (second channel + MAC).
  void schedule_beacon(Node* node, std::size_t identity_index,
                       double first_time, bool sch);
  void start_transmission(Node* node, const mac::Frame& frame, bool sch);
  void finish_transmission(Node* node, mac::Transmission transmission,
                           bool sch);
  void deliver(const mac::Transmission& transmission, mac::Channel& channel);
  mac::CsmaCa& mac_for(Node* node, bool sch);
  void mobility_tick(double dt);

  ScenarioConfig config_;
  Rng rng_;
  Rng gps_rng_;
  Rng attacker_power_rng_;
  mob::Highway highway_;
  std::unique_ptr<radio::PropagationModel> model_;
  std::unique_ptr<radio::CorrelatedShadowingField> shadowing_;
  EventQueue queue_;
  std::unique_ptr<mac::Channel> channel_;      // CCH
  std::unique_ptr<mac::Channel> sch_channel_;  // SCH (when enabled)
  std::vector<std::unique_ptr<mac::CsmaCa>> sch_macs_;  // per node id
  std::vector<std::unique_ptr<Node>> nodes_;
  GroundTruth truth_;
  WorldStats stats_;
  bool ran_ = false;
};

}  // namespace vp::sim
