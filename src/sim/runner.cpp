#include "sim/runner.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/runtime.h"
#include "obs/timer.h"

namespace vp::sim {

std::vector<NodeId> sample_observers(const World& world,
                                     const EvaluationOptions& options) {
  std::vector<NodeId> observers = world.normal_node_ids();
  VP_REQUIRE(!observers.empty());
  Rng rng(options.sampling_seed);
  std::shuffle(observers.begin(), observers.end(), rng.engine());
  if (observers.size() > options.max_observers) {
    observers.resize(options.max_observers);
  }
  return observers;
}

EvaluationResult evaluate(const World& world, Detector& detector,
                          const EvaluationOptions& options) {
  const std::vector<NodeId> observers = sample_observers(world, options);
  RateAverager averager;
  EvaluationResult result;
  double density_sum = 0.0;
  double neighbor_sum = 0.0;

  // Cut every (detection time, observer) window first — observe() is pure,
  // so the cuts fan out across the pool — then run the detector serially
  // over them in the same fixed order as the serial loop, keeping the
  // Eq. 12/13 averages identical for every thread count.
  std::vector<std::pair<double, NodeId>> tasks;
  tasks.reserve(world.detection_times().size() * observers.size());
  for (double t : world.detection_times()) {
    for (NodeId observer : observers) tasks.emplace_back(t, observer);
  }
  // Observability sinks, resolved once (the registry lookup takes a
  // mutex; the per-window loops must not).
  const bool instrumented = obs::enabled();
  obs::Histogram* cut_ns = nullptr;
  obs::Histogram* detect_ns = nullptr;
  obs::Histogram* suspects_hist = nullptr;
  obs::Histogram* neighbors_hist = nullptr;
  obs::Histogram* density_hist = nullptr;
  if (instrumented) {
    obs::MetricsRegistry& registry = obs::registry();
    cut_ns = &registry.histogram("evaluation.window_cut_ns");
    detect_ns = &registry.histogram("evaluation.window_detect_ns");
    suspects_hist = &registry.histogram(
        "evaluation.suspects_per_window", obs::Histogram::default_count_bounds());
    neighbors_hist = &registry.histogram(
        "evaluation.neighbors_per_window", obs::Histogram::default_count_bounds());
    density_hist = &registry.histogram("evaluation.density_per_km",
                                       obs::Histogram::default_count_bounds());
  }

  std::vector<ObservationWindow> windows(tasks.size());
  parallel_for(options.threads, tasks.size(),
               [&](std::size_t /*worker*/, std::size_t k) {
                 obs::ScopedTimer cut_timer(
                     cut_ns, instrumented ? obs::trace() : nullptr,
                     {.phase = "collection.cut",
                      .observer = static_cast<std::int64_t>(tasks[k].second),
                      .window = static_cast<std::int64_t>(k)});
                 windows[k] = world.observe(tasks[k].second, tasks[k].first,
                                            options.min_samples);
               });

  for (std::size_t k = 0; k < windows.size(); ++k) {
    const ObservationWindow& window = windows[k];
    if (window.neighbors.empty()) {
      if (instrumented) obs::registry().counter("evaluation.windows_empty").add(1);
      continue;
    }
    const std::size_t n = window.neighbors.size();
    obs::ScopedTimer detect_timer(
        detect_ns, instrumented ? obs::trace() : nullptr,
        {.phase = "detection.window",
         .observer = static_cast<std::int64_t>(tasks[k].second),
         .window = static_cast<std::int64_t>(k),
         .pairs = static_cast<std::int64_t>(n * (n - 1) / 2)});
    const std::vector<IdentityId> flagged = detector.detect(window, world);
    detect_timer.stop();
    averager.add(score_detection(flagged, window, world.truth()));
    density_sum += window.estimated_density_per_km;
    neighbor_sum += static_cast<double>(window.neighbors.size());
    ++result.windows_evaluated;
    if (instrumented) {
      suspects_hist->record(static_cast<double>(flagged.size()));
      neighbors_hist->record(static_cast<double>(n));
      density_hist->record(window.estimated_density_per_km);
    }
  }

  result.average_dr = averager.average_dr();
  result.average_fpr = averager.average_fpr();
  result.dr_samples = averager.defined_dr_samples();
  result.fpr_samples = averager.defined_fpr_samples();
  if (instrumented) {
    obs::MetricsRegistry& registry = obs::registry();
    registry.counter("evaluation.windows_evaluated")
        .add(result.windows_evaluated);
    registry.counter("evaluation.dr_defined_windows").add(result.dr_samples);
    registry.counter("evaluation.fpr_defined_windows").add(result.fpr_samples);
  }
  if (result.windows_evaluated > 0) {
    result.average_estimated_density =
        density_sum / static_cast<double>(result.windows_evaluated);
    result.average_neighbors =
        neighbor_sum / static_cast<double>(result.windows_evaluated);
  }
  return result;
}

obs::json::Value evaluation_report_extra(const EvaluationResult& result) {
  obs::json::Object extra;
  extra.emplace("average_dr", result.dr_defined()
                                  ? obs::json::Value(result.average_dr)
                                  : obs::json::Value(nullptr));
  extra.emplace("average_fpr", result.fpr_defined()
                                   ? obs::json::Value(result.average_fpr)
                                   : obs::json::Value(nullptr));
  extra.emplace("dr_defined_windows", obs::json::Value(result.dr_samples));
  extra.emplace("fpr_defined_windows", obs::json::Value(result.fpr_samples));
  extra.emplace("windows_evaluated",
                obs::json::Value(result.windows_evaluated));
  extra.emplace("average_estimated_density_per_km",
                obs::json::Value(result.average_estimated_density));
  extra.emplace("average_neighbors", obs::json::Value(result.average_neighbors));
  return obs::json::Value(std::move(extra));
}

}  // namespace vp::sim
