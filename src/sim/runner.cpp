#include "sim/runner.h"

#include <algorithm>

#include "common/error.h"

namespace vp::sim {

std::vector<NodeId> sample_observers(const World& world,
                                     const EvaluationOptions& options) {
  std::vector<NodeId> observers = world.normal_node_ids();
  VP_REQUIRE(!observers.empty());
  Rng rng(options.sampling_seed);
  std::shuffle(observers.begin(), observers.end(), rng.engine());
  if (observers.size() > options.max_observers) {
    observers.resize(options.max_observers);
  }
  return observers;
}

EvaluationResult evaluate(const World& world, Detector& detector,
                          const EvaluationOptions& options) {
  const std::vector<NodeId> observers = sample_observers(world, options);
  RateAverager averager;
  EvaluationResult result;
  double density_sum = 0.0;
  double neighbor_sum = 0.0;

  for (double t : world.detection_times()) {
    for (NodeId observer : observers) {
      const ObservationWindow window =
          world.observe(observer, t, options.min_samples);
      if (window.neighbors.empty()) continue;
      const std::vector<IdentityId> flagged = detector.detect(window, world);
      averager.add(score_detection(flagged, window, world.truth()));
      density_sum += window.estimated_density_per_km;
      neighbor_sum += static_cast<double>(window.neighbors.size());
      ++result.windows_evaluated;
    }
  }

  result.average_dr = averager.average_dr();
  result.average_fpr = averager.average_fpr();
  if (result.windows_evaluated > 0) {
    result.average_estimated_density =
        density_sum / static_cast<double>(result.windows_evaluated);
    result.average_neighbors =
        neighbor_sum / static_cast<double>(result.windows_evaluated);
  }
  return result;
}

}  // namespace vp::sim
