#include "sim/runner.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/thread_pool.h"

namespace vp::sim {

std::vector<NodeId> sample_observers(const World& world,
                                     const EvaluationOptions& options) {
  std::vector<NodeId> observers = world.normal_node_ids();
  VP_REQUIRE(!observers.empty());
  Rng rng(options.sampling_seed);
  std::shuffle(observers.begin(), observers.end(), rng.engine());
  if (observers.size() > options.max_observers) {
    observers.resize(options.max_observers);
  }
  return observers;
}

EvaluationResult evaluate(const World& world, Detector& detector,
                          const EvaluationOptions& options) {
  const std::vector<NodeId> observers = sample_observers(world, options);
  RateAverager averager;
  EvaluationResult result;
  double density_sum = 0.0;
  double neighbor_sum = 0.0;

  // Cut every (detection time, observer) window first — observe() is pure,
  // so the cuts fan out across the pool — then run the detector serially
  // over them in the same fixed order as the serial loop, keeping the
  // Eq. 12/13 averages identical for every thread count.
  std::vector<std::pair<double, NodeId>> tasks;
  tasks.reserve(world.detection_times().size() * observers.size());
  for (double t : world.detection_times()) {
    for (NodeId observer : observers) tasks.emplace_back(t, observer);
  }
  std::vector<ObservationWindow> windows(tasks.size());
  parallel_for(options.threads, tasks.size(),
               [&](std::size_t /*worker*/, std::size_t k) {
                 windows[k] = world.observe(tasks[k].second, tasks[k].first,
                                            options.min_samples);
               });

  for (const ObservationWindow& window : windows) {
    if (window.neighbors.empty()) continue;
    const std::vector<IdentityId> flagged = detector.detect(window, world);
    averager.add(score_detection(flagged, window, world.truth()));
    density_sum += window.estimated_density_per_km;
    neighbor_sum += static_cast<double>(window.neighbors.size());
    ++result.windows_evaluated;
  }

  result.average_dr = averager.average_dr();
  result.average_fpr = averager.average_fpr();
  if (result.windows_evaluated > 0) {
    result.average_estimated_density =
        density_sum / static_cast<double>(result.windows_evaluated);
    result.average_neighbors =
        neighbor_sum / static_cast<double>(result.windows_evaluated);
  }
  return result;
}

}  // namespace vp::sim
