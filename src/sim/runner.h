// Experiment harness: runs detectors over a finished simulation the way the
// paper evaluates them — every sampled normal vehicle performs a detection
// at the end of every detection period, and the per-(observer, period)
// rates are averaged (Eq. 12/13).
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "obs/json.h"
#include "sim/detector.h"
#include "sim/metrics.h"
#include "sim/world.h"

namespace vp::sim {

struct EvaluationOptions {
  // Observers are a uniform sample of the normal vehicles; pairwise DTW per
  // observer is quadratic in neighbours, so evaluating every vehicle at
  // high density is needlessly slow and statistically redundant.
  std::size_t max_observers = 16;
  // Minimum packets an identity needs within the window to be compared
  // (2 s of beacons by default: with fewer, a series carries no shape).
  std::size_t min_samples = 20;
  std::uint64_t sampling_seed = 7;
  // Worker threads for cutting the observer×detection-time observation
  // windows out of the logs (1 = serial, 0 = all hardware threads). The
  // detector pass itself stays serial in a fixed order — Detector
  // implementations are stateful — so results are identical for every
  // value; parallelise inside a detection via ComparisonOptions::threads.
  std::size_t threads = 1;
};

struct EvaluationResult {
  // 0.0 both when the true average is zero AND when no window had a
  // defined rate — check dr_defined()/fpr_defined() (the run report
  // writes null for an undefined average instead of a silent 0).
  double average_dr = 0.0;
  double average_fpr = 0.0;
  // How many (observer, period) windows had a defined DR / FPR (Eq. 10/11
  // are undefined when the observer heard no illegitimate / no legitimate
  // identity).
  std::size_t dr_samples = 0;
  std::size_t fpr_samples = 0;
  bool dr_defined() const { return dr_samples > 0; }
  bool fpr_defined() const { return fpr_samples > 0; }
  std::size_t windows_evaluated = 0;
  double average_estimated_density = 0.0;
  double average_neighbors = 0.0;
};

// Evaluates `detector` on an already-run world.
EvaluationResult evaluate(const World& world, Detector& detector,
                          const EvaluationOptions& options = {});

// Picks the observer sample used by evaluate() (exposed for experiments
// that need the same sample across detectors).
std::vector<NodeId> sample_observers(const World& world,
                                     const EvaluationOptions& options);

// JSON block for the run report's "extra" section. An average with zero
// defined windows is written as null, never as a silent 0.0 — in a report
// a spurious zero reads as a catastrophic regression when it is really
// "nothing to measure".
obs::json::Value evaluation_report_extra(const EvaluationResult& result);

}  // namespace vp::sim
