#include "sim/node.h"

#include "common/error.h"

namespace vp::sim {

Node::Node(NodeId id, bool malicious, std::vector<IdentityConfig> identities,
           mob::EpochMobility mobility, radio::Receiver receiver)
    : id_(id),
      malicious_(malicious),
      identities_(std::move(identities)),
      mobility_(std::move(mobility)),
      receiver_(receiver) {
  VP_REQUIRE(!identities_.empty());
  // The first identity is the node's genuine one; only malicious nodes may
  // carry more.
  VP_REQUIRE(!identities_.front().sybil);
  VP_REQUIRE(malicious_ || identities_.size() == 1);
  for (std::size_t i = 1; i < identities_.size(); ++i) {
    VP_REQUIRE(identities_[i].sybil);
  }
}

void Node::attach_mac(std::unique_ptr<mac::CsmaCa> mac) {
  VP_REQUIRE(mac != nullptr);
  VP_REQUIRE(mac_ == nullptr);
  mac_ = std::move(mac);
}

mac::CsmaCa& Node::mac() {
  VP_REQUIRE(mac_ != nullptr);
  return *mac_;
}

const mac::CsmaCa& Node::mac() const {
  VP_REQUIRE(mac_ != nullptr);
  return *mac_;
}

}  // namespace vp::sim
