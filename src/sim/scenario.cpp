#include "sim/scenario.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace vp::sim {

std::size_t ScenarioConfig::vehicle_count() const {
  const double km = highway.length_m / 1000.0;
  return static_cast<std::size_t>(std::llround(density_per_km * km));
}

std::size_t ScenarioConfig::malicious_count() const {
  const auto n = static_cast<double>(vehicle_count());
  // At least one attacker whenever the fraction is nonzero, so sparse
  // scenarios still contain an attack to detect.
  const auto m = static_cast<std::size_t>(std::llround(n * malicious_fraction));
  return malicious_fraction > 0.0 ? std::max<std::size_t>(m, 1) : 0;
}

void ScenarioConfig::validate() const {
  auto fail = [](const std::string& msg) { throw InvalidArgument(msg); };
  if (density_per_km <= 0.0) fail("density must be positive");
  if (malicious_fraction < 0.0 || malicious_fraction > 1.0) {
    fail("malicious fraction must be in [0, 1]");
  }
  if (sybil_per_malicious_min < 1 ||
      sybil_per_malicious_max < sybil_per_malicious_min) {
    fail("invalid Sybil count range");
  }
  if (tx_power_max_dbm < tx_power_min_dbm) fail("invalid TX power range");
  if (beacon_rate_hz <= 0.0) fail("beacon rate must be positive");
  if (sim_time_s <= 0.0) fail("simulation time must be positive");
  if (observation_time_s <= 0.0 || observation_time_s > sim_time_s) {
    fail("observation time must be in (0, sim time]");
  }
  if (detection_period_s <= 0.0) fail("detection period must be positive");
  if (density_estimation_period_s <= 0.0 ||
      density_estimation_period_s > observation_time_s) {
    fail("density estimation period must be in (0, observation time]");
  }
  if (max_transmission_range_m <= 0.0) fail("Dist_max must be positive");
  if (sch_beacon_rate_hz < 0.0) fail("SCH beacon rate must be >= 0");
  if (attack_start_time_s < 0.0) fail("attack start time must be >= 0");
  if (shadowing_coherence_time_s <= 0.0) {
    fail("shadowing coherence time must be positive");
  }
  if (measurement_noise_db < 0.0) fail("measurement noise must be >= 0");
  if (malicious_count() >= vehicle_count() && malicious_fraction < 1.0) {
    fail("malicious count exceeds vehicle count");
  }
}

std::string ScenarioConfig::describe() const {
  std::ostringstream os;
  os << "Scenario (Table V defaults unless overridden)\n"
     << "  highway length        : " << highway.length_m << " m, "
     << 2 * highway.lanes_per_direction << " lanes ("
     << highway.lane_width_m << " m wide)\n"
     << "  density               : " << density_per_km << " vhls/km ("
     << vehicle_count() << " vehicles, " << malicious_count()
     << " malicious)\n"
     << "  sybil per malicious   : " << sybil_per_malicious_min << "-"
     << sybil_per_malicious_max << "\n"
     << "  tx power              : " << tx_power_min_dbm << "-"
     << tx_power_max_dbm << " dBm\n"
     << "  beacon rate           : " << beacon_rate_hz << " Hz, "
     << payload_bytes << " B @ " << phy.data_rate_bps / 1e6 << " Mbps\n"
     << "  slot / SIFS           : " << phy.slot_us << " us / " << phy.sifs_us
     << " us\n"
     << "  mobility              : epochs " << mobility.epoch_rate_per_s
     << "/s, speed N(" << mobility.mean_speed_mps << ", "
     << mobility.sigma_speed_mps << ") m/s\n"
     << "  observation/detection : " << observation_time_s << " s / "
     << detection_period_s << " s (density est. "
     << density_estimation_period_s << " s)\n"
     << "  model change          : " << (model_change ? "on" : "off")
     << " (period " << model_change_period_s << " s)\n"
     << "  sim time              : " << sim_time_s << " s, seed " << seed
     << "\n";
  return os.str();
}

}  // namespace vp::sim
