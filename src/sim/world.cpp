#include "sim/world.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "radio/switching.h"

namespace vp::sim {

void GroundTruth::add(IdentityId id, Info info) {
  VP_REQUIRE(infos_.emplace(id, info).second);
}

const GroundTruth::Info& GroundTruth::info(IdentityId id) const {
  const auto it = infos_.find(id);
  VP_REQUIRE(it != infos_.end());
  return it->second;
}

bool GroundTruth::known(IdentityId id) const { return infos_.count(id) != 0; }

bool GroundTruth::is_illegitimate(IdentityId id) const {
  const Info& i = info(id);
  return i.sybil || i.owner_malicious;
}

bool GroundTruth::same_radio(IdentityId a, IdentityId b) const {
  return info(a).owner == info(b).owner;
}

World::World(ScenarioConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      gps_rng_(rng_.fork("gps")),
      attacker_power_rng_(rng_.fork("attacker-power")),
      highway_(config_.highway) {
  config_.validate();
  build_model();
  shadowing_ = std::make_unique<radio::CorrelatedShadowingField>(
      config_.shadowing_coherence_time_s, config_.measurement_noise_db,
      rng_.fork("shadowing"));
  channel_ = std::make_unique<mac::Channel>(*model_, config_.phy);
  if (config_.sch_beacon_rate_hz > 0.0) {
    sch_channel_ = std::make_unique<mac::Channel>(*model_, config_.phy);
  }
  build_nodes();
}

void World::build_model() {
  if (config_.model_change) {
    model_ = std::make_unique<radio::SwitchingDualSlopeModel>(
        radio::SwitchingDualSlopeModel::perturbed_cycle(
            config_.frequency_hz, config_.base_environment,
            config_.model_cycle_steps, config_.model_change_period_s,
            config_.seed, config_.link_budget));
  } else {
    model_ = std::make_unique<radio::DualSlopeModel>(
        config_.frequency_hz, config_.base_environment, config_.link_budget);
  }
}

void World::build_nodes() {
  Rng build_rng = rng_.fork("build");
  const std::size_t n = config_.vehicle_count();
  const std::size_t n_malicious = config_.malicious_count();
  VP_REQUIRE(n >= 2);

  // Pick which vehicles are malicious, uniformly over the fleet.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), build_rng.engine());
  std::vector<bool> malicious(n, false);
  for (std::size_t i = 0; i < n_malicious; ++i) malicious[order[i]] = true;

  IdentityId next_sybil_id = 10000;
  for (std::size_t i = 0; i < n; ++i) {
    const auto node_id = static_cast<NodeId>(i);
    std::vector<IdentityConfig> identities;
    // Genuine identity: same numeric value as the node id.
    identities.push_back(
        {.id = static_cast<IdentityId>(i),
         .sybil = false,
         .tx_power_dbm = build_rng.uniform(config_.tx_power_min_dbm,
                                           config_.tx_power_max_dbm),
         .claimed_offset = {}});
    if (malicious[i]) {
      const auto n_sybil = static_cast<int>(
          build_rng.uniform_int(config_.sybil_per_malicious_min,
                                config_.sybil_per_malicious_max));
      for (int s = 0; s < n_sybil; ++s) {
        const double magnitude = build_rng.uniform(
            config_.sybil_offset_min_m, config_.sybil_offset_max_m);
        const double offset =
            build_rng.chance(0.5) ? magnitude : -magnitude;
        identities.push_back(
            {.id = next_sybil_id++,
             .sybil = true,
             .tx_power_dbm = build_rng.uniform(config_.tx_power_min_dbm,
                                               config_.tx_power_max_dbm),
             .claimed_offset = {offset, 0.0}});
      }
    }

    mob::VehicleState initial = highway_.random_state(build_rng);
    mob::EpochMobility mobility(
        config_.mobility, initial,
        rng_.fork("mobility-" + std::to_string(i)));
    auto node =
        std::make_unique<Node>(node_id, malicious[i], identities,
                               std::move(mobility),
                               radio::Receiver(config_.receiver));

    for (const IdentityConfig& identity : node->identities()) {
      truth_.add(identity.id, {.owner = node_id,
                               .sybil = identity.sybil,
                               .owner_malicious = malicious[i]});
    }
    nodes_.push_back(std::move(node));
  }

  // Attach MACs (the channels exist by now) and schedule beacon processes.
  if (sch_channel_) sch_macs_.resize(nodes_.size());
  for (auto& node_ptr : nodes_) {
    Node* node = node_ptr.get();
    node->attach_mac(std::make_unique<mac::CsmaCa>(
        config_.phy, *channel_, queue_,
        rng_.fork("mac-" + std::to_string(node->id())), node->id(),
        [node] { return node->state().position; },
        [this, node](const mac::Frame& frame) {
          start_transmission(node, frame, /*sch=*/false);
        }));
    if (sch_channel_) {
      sch_macs_[node->id()] = std::make_unique<mac::CsmaCa>(
          config_.phy, *sch_channel_, queue_,
          rng_.fork("sch-mac-" + std::to_string(node->id())), node->id(),
          [node] { return node->state().position; },
          [this, node](const mac::Frame& frame) {
            start_transmission(node, frame, /*sch=*/true);
          });
    }
    const double beacon_period = 1.0 / config_.beacon_rate_hz;
    // Random phase per NODE desynchronises the fleet's beacons; all of a
    // node's identities share that phase because one radio drains one
    // queue — the malicious node emits its genuine and Sybil beacons in a
    // back-to-back burst (which is also why Sybil frames experience nearly
    // identical instantaneous shadowing, Observation 3). A staggering
    // attacker deliberately spreads its identities over the period instead.
    const double phase = build_rng.uniform(0.0, beacon_period);
    const bool stagger =
        node->malicious() && config_.sybil_timing_mode ==
                                 ScenarioConfig::SybilTimingMode::kStaggered;
    for (std::size_t idx = 0; idx < node->identities().size(); ++idx) {
      const double identity_phase =
          stagger && idx > 0 ? build_rng.uniform(0.0, beacon_period) : phase;
      schedule_beacon(node, idx, identity_phase, /*sch=*/false);
      if (sch_channel_) {
        const double sch_period = 1.0 / config_.sch_beacon_rate_hz;
        const double sch_phase =
            stagger && idx > 0
                ? build_rng.uniform(0.0, sch_period)
                : phase * sch_period / beacon_period;
        schedule_beacon(node, idx, sch_phase, /*sch=*/true);
      }
    }
  }
}

mac::CsmaCa& World::mac_for(Node* node, bool sch) {
  if (!sch) return node->mac();
  VP_REQUIRE(sch_channel_ != nullptr);
  return *sch_macs_[node->id()];
}

void World::schedule_beacon(Node* node, std::size_t identity_index,
                            double first_time, bool sch) {
  queue_.schedule(first_time, [this, node, identity_index, sch] {
    const double now = queue_.now();
    if (now >= config_.sim_time_s) return;
    const IdentityConfig& identity = node->identities()[identity_index];
    if (identity.sybil && now < config_.attack_start_time_s) {
      // The attack has not started yet: stay silent, keep the schedule.
      schedule_beacon(node, identity_index,
                      now + 1.0 / (sch ? config_.sch_beacon_rate_hz
                                       : config_.beacon_rate_hz),
                      sch);
      return;
    }

    mac::Frame frame;
    frame.identity = identity.id;
    frame.sender = node->id();
    frame.tx_power_dbm = identity.tx_power_dbm;
    // The Section VII smart attack: the malicious node re-draws the power
    // of every forged beacon to destroy the constant offset Eq. 7 removes.
    if (node->malicious() && identity.sybil &&
        config_.attacker_power_mode ==
            ScenarioConfig::AttackerPowerMode::kPerPacket) {
      frame.tx_power_dbm = attacker_power_rng_.uniform(
          config_.tx_power_min_dbm, config_.tx_power_max_dbm);
    }
    const mob::Vec2 gps_noise = {gps_rng_.normal(0.0, config_.gps_noise_m),
                                 gps_rng_.normal(0.0, config_.gps_noise_m)};
    frame.claimed_position =
        node->state().position + identity.claimed_offset + gps_noise;
    frame.claimed_speed_mps = node->state().speed_mps;
    frame.payload_bytes =
        sch ? config_.sch_payload_bytes : config_.payload_bytes;
    if (!mac_for(node, sch).enqueue(frame)) ++stats_.beacon_queue_drops;

    const double period =
        1.0 / (sch ? config_.sch_beacon_rate_hz : config_.beacon_rate_hz);
    schedule_beacon(node, identity_index, now + period, sch);
  });
}

void World::start_transmission(Node* node, const mac::Frame& frame,
                               bool sch) {
  const double now = queue_.now();
  const double airtime = config_.phy.airtime_s(frame.payload_bytes);
  mac::Channel& channel = sch ? *sch_channel_ : *channel_;
  const mac::TransmissionSeq seq =
      channel.begin(frame, node->state().position, now, airtime);
  ++stats_.frames_sent;

  mac::Transmission transmission;
  transmission.seq = seq;
  transmission.frame = frame;
  transmission.tx_position = node->state().position;
  transmission.start_s = now;
  transmission.end_s = now + airtime;
  queue_.schedule(now + airtime, [this, node, transmission, sch] {
    finish_transmission(node, transmission, sch);
  });
}

void World::finish_transmission(Node* node, mac::Transmission transmission,
                                bool sch) {
  mac::Channel& channel = sch ? *sch_channel_ : *channel_;
  deliver(transmission, channel);
  mac_for(node, sch).on_transmission_complete();
  // Anything that ended more than a frame ago can no longer overlap a
  // frame still in flight.
  const double max_airtime = config_.phy.airtime_s(config_.payload_bytes);
  channel.prune(queue_.now() - 2.0 * max_airtime);
}

void World::deliver(const mac::Transmission& t, mac::Channel& channel) {
  for (auto& receiver_ptr : nodes_) {
    Node& rx_node = *receiver_ptr;
    if (rx_node.id() == t.frame.sender) continue;
    const mob::Vec2 pos = rx_node.state().position;
    const double d = std::max(mob::distance(pos, t.tx_position), 1.0);
    if (d > config_.max_reception_range_m) continue;
    if (channel.node_transmitting_during(rx_node.id(), t.start_s, t.end_s)) {
      ++stats_.frames_half_duplex_missed;
      continue;
    }
    // Mean path loss plus the *pair-correlated* shadowing realisation: all
    // identities of one radio share the same process toward this receiver
    // (Observation 3), while distinct radios fade independently. The
    // shadowing process is advanced at delivery (frame-end) time: the
    // event queue guarantees those are globally ordered even with two
    // channels in flight.
    const double mean_power =
        model_->mean_rx_power_dbm(t.frame.tx_power_dbm, d, t.start_s);
    const double sigma = model_->shadowing_sigma_db(d, t.start_s);
    const double rx_power =
        mean_power +
        shadowing_->sample(t.frame.sender, rx_node.id(), sigma, t.end_s);
    const auto rssi = rx_node.receiver().measure(rx_power);
    if (!rssi.has_value()) {
      ++stats_.frames_below_sensitivity;
      continue;
    }
    const double interference =
        channel.interference_mw(pos, t.start_s, t.end_s, t.seq);
    if (!rx_node.receiver().captures(rx_power, interference)) {
      ++stats_.frames_collided;
      continue;
    }
    rx_node.log().record(t.frame.identity,
                         {.time_s = t.end_s,
                          .rssi_dbm = *rssi,
                          .claimed_position = t.frame.claimed_position,
                          .claimed_speed_mps = t.frame.claimed_speed_mps,
                          .declared_tx_power_dbm = t.frame.tx_power_dbm});
    ++stats_.frames_received;
  }
}

void World::mobility_tick(double dt) {
  const double tick_now = queue_.now();
  for (auto& node : nodes_) {
    node->mobility().advance(dt, highway_);
    node->trace().add(tick_now, node->state().position,
                      node->state().speed_mps);
  }
  const double now = queue_.now();
  if (now + dt <= config_.sim_time_s) {
    queue_.schedule(now + dt, [this, dt] { mobility_tick(dt); });
  }
}

void World::run() {
  VP_REQUIRE(!ran_);
  ran_ = true;
  for (auto& node : nodes_) {
    node->trace().add(0.0, node->state().position, node->state().speed_mps);
  }
  const double dt = 0.1;
  queue_.schedule(dt, [this, dt] { mobility_tick(dt); });
  queue_.run_until(config_.sim_time_s);
}

Node& World::node(NodeId id) {
  VP_REQUIRE(id < nodes_.size());
  return *nodes_[id];
}

const Node& World::node(NodeId id) const {
  VP_REQUIRE(id < nodes_.size());
  return *nodes_[id];
}

std::vector<NodeId> World::normal_node_ids() const {
  std::vector<NodeId> ids;
  for (const auto& node : nodes_) {
    if (!node->malicious()) ids.push_back(node->id());
  }
  return ids;
}

std::vector<double> World::detection_times() const {
  std::vector<double> times;
  for (double t = config_.observation_time_s; t <= config_.sim_time_s + 1e-9;
       t += config_.detection_period_s) {
    times.push_back(t);
  }
  return times;
}

ObservationWindow World::observe(NodeId observer, double t1,
                                 std::size_t min_samples) const {
  const Node& obs_node = node(observer);
  ObservationWindow window;
  window.observer = observer;
  window.observer_position = obs_node.state().position;
  window.t0 = t1 - config_.observation_time_s;
  window.t1 = t1;

  for (IdentityId id :
       obs_node.log().identities_heard(window.t0, window.t1, min_samples)) {
    NeighborObservation neighbor;
    neighbor.id = id;
    neighbor.rssi = obs_node.log().rssi_series(id, window.t0, window.t1);
    neighbor.beacons = obs_node.log().records(id, window.t0, window.t1);
    window.neighbors.push_back(std::move(neighbor));
  }

  // Eq. 9: den = N / (2 · Dist_max), with N the identities heard during the
  // trailing density-estimation period. A fresh observer cannot yet tell
  // legitimate nodes apart, so all heard identities count (Section IV-C-3).
  const double est_t0 = t1 - config_.density_estimation_period_s;
  const std::size_t heard =
      obs_node.log().identities_heard(est_t0, t1, 1).size();
  const double dist_max_km = config_.max_transmission_range_m / 1000.0;
  window.estimated_density_per_km =
      static_cast<double>(heard) / (2.0 * dist_max_km);
  return window;
}

}  // namespace vp::sim
