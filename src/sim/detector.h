// The interface every Sybil detector implements so the evaluation harness
// can sweep Voiceprint and the baselines identically.
//
// `world` is passed for *cooperative* schemes (CPVSAD consults witness
// vehicles' RSSI reports); independent schemes such as Voiceprint must use
// only the observation window. Ground truth lives in the world too but is
// reserved for the harness — detectors must not touch it.
#pragma once

#include <string_view>
#include <vector>

#include "common/ids.h"
#include "sim/observation.h"
#include "sim/world.h"

namespace vp::sim {

class Detector {
 public:
  virtual ~Detector() = default;

  // Identities the observer should treat as part of a Sybil attack
  // (Algorithm 1's SybilIDs, i.e. suspected Sybil identities together with
  // the malicious senders behind them).
  virtual std::vector<IdentityId> detect(const ObservationWindow& window,
                                         const World& world) = 0;

  virtual std::string_view name() const = 0;
};

}  // namespace vp::sim
