#include "sim/metrics.h"

#include <set>

#include "common/error.h"

namespace vp::sim {

double DetectionCounts::dr() const {
  VP_REQUIRE(dr_defined());
  return static_cast<double>(detected_true) /
         static_cast<double>(illegitimate);
}

double DetectionCounts::fpr() const {
  VP_REQUIRE(fpr_defined());
  return static_cast<double>(detected_false) /
         static_cast<double>(legitimate);
}

DetectionCounts score_detection(const std::vector<IdentityId>& flagged,
                                const ObservationWindow& window,
                                const GroundTruth& truth) {
  const std::set<IdentityId> flagged_set(flagged.begin(), flagged.end());
  DetectionCounts counts;
  for (const NeighborObservation& neighbor : window.neighbors) {
    if (!truth.known(neighbor.id)) continue;
    const bool illegitimate = truth.is_illegitimate(neighbor.id);
    const bool hit = flagged_set.count(neighbor.id) != 0;
    if (illegitimate) {
      ++counts.illegitimate;
      if (hit) ++counts.detected_true;
    } else {
      ++counts.legitimate;
      if (hit) ++counts.detected_false;
    }
  }
  return counts;
}

void RateAverager::add(std::string_view channel,
                       const DetectionCounts& counts) {
  if (!counts.dr_defined() && !counts.fpr_defined()) return;
  const auto it = channels_.find(channel);
  Channel& c = it != channels_.end()
                   ? it->second
                   : channels_.emplace(std::string(channel), Channel{})
                         .first->second;
  if (counts.dr_defined()) {
    c.dr_sum += counts.dr();
    ++c.dr_n;
  }
  if (counts.fpr_defined()) {
    c.fpr_sum += counts.fpr();
    ++c.fpr_n;
  }
}

const RateAverager::Channel* RateAverager::find(
    std::string_view channel) const {
  const auto it = channels_.find(channel);
  return it == channels_.end() ? nullptr : &it->second;
}

double RateAverager::average_dr(std::string_view channel) const {
  const Channel* c = find(channel);
  return c == nullptr || c->dr_n == 0
             ? 0.0
             : c->dr_sum / static_cast<double>(c->dr_n);
}

double RateAverager::average_fpr(std::string_view channel) const {
  const Channel* c = find(channel);
  return c == nullptr || c->fpr_n == 0
             ? 0.0
             : c->fpr_sum / static_cast<double>(c->fpr_n);
}

std::optional<double> RateAverager::average_dr_if_defined(
    std::string_view channel) const {
  const Channel* c = find(channel);
  if (c == nullptr || c->dr_n == 0) return std::nullopt;
  return c->dr_sum / static_cast<double>(c->dr_n);
}

std::optional<double> RateAverager::average_fpr_if_defined(
    std::string_view channel) const {
  const Channel* c = find(channel);
  if (c == nullptr || c->fpr_n == 0) return std::nullopt;
  return c->fpr_sum / static_cast<double>(c->fpr_n);
}

std::size_t RateAverager::defined_dr_samples(std::string_view channel) const {
  const Channel* c = find(channel);
  return c == nullptr ? 0 : c->dr_n;
}

std::size_t RateAverager::defined_fpr_samples(std::string_view channel) const {
  const Channel* c = find(channel);
  return c == nullptr ? 0 : c->fpr_n;
}

std::vector<std::string> RateAverager::channels() const {
  std::vector<std::string> names;
  names.reserve(channels_.size());
  for (const auto& [name, channel] : channels_) names.push_back(name);
  return names;
}

}  // namespace vp::sim
