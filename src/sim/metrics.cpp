#include "sim/metrics.h"

#include <set>

#include "common/error.h"

namespace vp::sim {

double DetectionCounts::dr() const {
  VP_REQUIRE(dr_defined());
  return static_cast<double>(detected_true) /
         static_cast<double>(illegitimate);
}

double DetectionCounts::fpr() const {
  VP_REQUIRE(fpr_defined());
  return static_cast<double>(detected_false) /
         static_cast<double>(legitimate);
}

DetectionCounts score_detection(const std::vector<IdentityId>& flagged,
                                const ObservationWindow& window,
                                const GroundTruth& truth) {
  const std::set<IdentityId> flagged_set(flagged.begin(), flagged.end());
  DetectionCounts counts;
  for (const NeighborObservation& neighbor : window.neighbors) {
    if (!truth.known(neighbor.id)) continue;
    const bool illegitimate = truth.is_illegitimate(neighbor.id);
    const bool hit = flagged_set.count(neighbor.id) != 0;
    if (illegitimate) {
      ++counts.illegitimate;
      if (hit) ++counts.detected_true;
    } else {
      ++counts.legitimate;
      if (hit) ++counts.detected_false;
    }
  }
  return counts;
}

void RateAverager::add(const DetectionCounts& counts) {
  if (counts.dr_defined()) {
    dr_sum_ += counts.dr();
    ++dr_n_;
  }
  if (counts.fpr_defined()) {
    fpr_sum_ += counts.fpr();
    ++fpr_n_;
  }
}

double RateAverager::average_dr() const {
  return dr_n_ == 0 ? 0.0 : dr_sum_ / static_cast<double>(dr_n_);
}

double RateAverager::average_fpr() const {
  return fpr_n_ == 0 ? 0.0 : fpr_sum_ / static_cast<double>(fpr_n_);
}

std::optional<double> RateAverager::average_dr_if_defined() const {
  if (dr_n_ == 0) return std::nullopt;
  return dr_sum_ / static_cast<double>(dr_n_);
}

std::optional<double> RateAverager::average_fpr_if_defined() const {
  if (fpr_n_ == 0) return std::nullopt;
  return fpr_sum_ / static_cast<double>(fpr_n_);
}

}  // namespace vp::sim
