// Shared fleet replay streams (DESIGN.md §14).
//
// Three drivers feed multi-observer beacon sequences into the detection
// stack: examples/fleet_detection (simulated world), bench/*_throughput
// (synthetic load), and the wire ingestion tier (tools/vp_ingest_client,
// bench/wire_throughput). They must feed *identical* sequences for their
// results to be comparable, so the replay construction lives here once:
// a FleetBeacon stream in arrival order — every observer's receptions
// merged and keyed (time, observer, identity), the interleaving a shared
// ingestion front-end would see.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace vp::sim {

class World;

// One reception: `observer` heard `id` at `time_s`. The observer id
// doubles as the service session id and the wire observer id, so the
// same stream drives every ingestion path.
struct FleetBeacon {
  double time_s = 0.0;
  std::uint64_t observer = 0;
  IdentityId id = 0;
  double rssi_dbm = 0.0;
};

// Canonical arrival order: (time, observer, identity). Total because no
// observer logs two receptions of one identity at the same instant.
void sort_fleet(std::vector<FleetBeacon>& fleet);

// Every listed observer's RSSI log over [0, horizon_s), merged into one
// sorted stream. min_samples is forwarded to RssiLog::identities_heard
// (1 = every identity with any reception).
std::vector<FleetBeacon> replay_from_world(
    const World& world, const std::vector<NodeId>& observers,
    double horizon_s, std::size_t min_samples = 1);

// Synthetic fleet for load benchmarks: `observers` sessions (ids 1..n)
// each hearing `identities` identities (ids 1..m) at nominal rate_hz
// over [0, duration_s), with MAC-ish jitter and AR(1) shadowing around a
// per-identity mean level. Deterministic: the RNG stream is seeded per
// (observer, identity), so every caller gets bit-identical beacons.
std::vector<FleetBeacon> synthesize_fleet(std::size_t observers,
                                          std::size_t identities,
                                          double rate_hz, double duration_s);

}  // namespace vp::sim
