// A physical vehicle in the simulation: one radio, one mobility process,
// one RSSI log, and the identities it broadcasts (one for normal nodes;
// one real plus 3–6 forged ones for malicious nodes, Section V-A).
#pragma once

#include <memory>
#include <vector>

#include "common/ids.h"
#include "mac/csma_ca.h"
#include "mobility/epoch_mobility.h"
#include "mobility/trace.h"
#include "radio/receiver.h"
#include "sim/rssi_log.h"

namespace vp::sim {

struct IdentityConfig {
  IdentityId id = kInvalidIdentity;
  bool sybil = false;
  double tx_power_dbm = 20.0;
  // Forged positions drift with the real vehicle at this fixed offset; zero
  // for genuine identities.
  mob::Vec2 claimed_offset;
};

class Node {
 public:
  Node(NodeId id, bool malicious, std::vector<IdentityConfig> identities,
       mob::EpochMobility mobility, radio::Receiver receiver);

  NodeId id() const { return id_; }
  bool malicious() const { return malicious_; }

  const std::vector<IdentityConfig>& identities() const { return identities_; }
  const mob::VehicleState& state() const { return mobility_.state(); }
  mob::EpochMobility& mobility() { return mobility_; }
  const radio::Receiver& receiver() const { return receiver_; }

  RssiLog& log() { return log_; }
  const RssiLog& log() const { return log_; }

  // Position history sampled at every mobility tick; stands in for the GPS
  // trace a real vehicle would log (used by cooperative baselines and the
  // Fig. 14-style post-analysis).
  mob::Trace& trace() { return trace_; }
  const mob::Trace& trace() const { return trace_; }

  // The MAC is attached by the world once the shared channel exists.
  void attach_mac(std::unique_ptr<mac::CsmaCa> mac);
  mac::CsmaCa& mac();
  const mac::CsmaCa& mac() const;

 private:
  NodeId id_;
  bool malicious_;
  std::vector<IdentityConfig> identities_;
  mob::EpochMobility mobility_;
  radio::Receiver receiver_;
  RssiLog log_;
  mob::Trace trace_;
  std::unique_ptr<mac::CsmaCa> mac_;
};

}  // namespace vp::sim
