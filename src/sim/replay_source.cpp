#include "sim/replay_source.h"

#include <algorithm>

#include "common/rng.h"
#include "sim/rssi_log.h"
#include "sim/world.h"

namespace vp::sim {

namespace {

// One identity's beacons heard by one observer over [0, duration):
// nominal 1/rate spacing with MAC-ish jitter, values an AR(1) shadowing
// walk around a mean level. The seed derivation is part of the bench
// contract: changing it changes every BENCH_service/BENCH_wire workload.
void synthesize_identity(std::uint64_t observer, IdentityId id,
                         double rate_hz, double duration_s,
                         std::vector<FleetBeacon>& out) {
  Rng rng(mix64(mix64(0xf1ee7, observer), id));
  const double period = 1.0 / rate_hz;
  double shadow = 0.0;
  const double level = -60.0 - rng.uniform(0.0, 25.0);
  const double phase = rng.uniform(0.0, period);
  for (double t = phase; t < duration_s; t += period) {
    shadow = 0.9 * shadow + rng.normal(0.0, 1.5);
    const double jitter = rng.uniform(0.0, 0.2 * period);
    out.push_back(
        {t + jitter, observer, id, level + shadow + rng.normal(0.0, 0.5)});
  }
}

}  // namespace

void sort_fleet(std::vector<FleetBeacon>& fleet) {
  std::sort(fleet.begin(), fleet.end(),
            [](const FleetBeacon& a, const FleetBeacon& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              if (a.observer != b.observer) return a.observer < b.observer;
              return a.id < b.id;
            });
}

std::vector<FleetBeacon> replay_from_world(
    const World& world, const std::vector<NodeId>& observers,
    double horizon_s, std::size_t min_samples) {
  std::vector<FleetBeacon> fleet;
  for (NodeId observer : observers) {
    const RssiLog& log = world.node(observer).log();
    for (IdentityId id :
         log.identities_heard(0.0, horizon_s, min_samples)) {
      for (const BeaconRecord& r : log.records(id, 0.0, horizon_s)) {
        fleet.push_back({r.time_s, observer, id, r.rssi_dbm});
      }
    }
  }
  sort_fleet(fleet);
  return fleet;
}

std::vector<FleetBeacon> synthesize_fleet(std::size_t observers,
                                          std::size_t identities,
                                          double rate_hz, double duration_s) {
  std::vector<FleetBeacon> fleet;
  fleet.reserve(static_cast<std::size_t>(static_cast<double>(observers) *
                                         static_cast<double>(identities) *
                                         rate_hz * duration_s) +
                observers * identities);
  for (std::size_t s = 0; s < observers; ++s) {
    for (std::size_t i = 0; i < identities; ++i) {
      synthesize_identity(static_cast<std::uint64_t>(s + 1),
                          static_cast<IdentityId>(i + 1), rate_hz, duration_s,
                          fleet);
    }
  }
  sort_fleet(fleet);
  return fleet;
}

}  // namespace vp::sim
