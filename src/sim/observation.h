// What one vehicle knows after an observation window: the RSSI series (and
// raw beacon records) of every identity it heard, plus its locally
// estimated traffic density (Eq. 9). This is the sole input of
// Voiceprint's comparison phase and the verifier-side input of CPVSAD.
#pragma once

#include <vector>

#include "common/ids.h"
#include "mobility/state.h"
#include "sim/rssi_log.h"
#include "timeseries/series.h"

namespace vp::sim {

struct NeighborObservation {
  IdentityId id = kInvalidIdentity;
  ts::Series rssi;
  std::vector<BeaconRecord> beacons;
};

struct ObservationWindow {
  NodeId observer = kInvalidNode;
  mob::Vec2 observer_position;  // at the end of the window
  double t0 = 0.0;
  double t1 = 0.0;
  std::vector<NeighborObservation> neighbors;
  // Eq. 9 local estimate, vehicles per km.
  double estimated_density_per_km = 0.0;

  const NeighborObservation* find(IdentityId id) const {
    for (const auto& n : neighbors) {
      if (n.id == id) return &n;
    }
    return nullptr;
  }
};

}  // namespace vp::sim
