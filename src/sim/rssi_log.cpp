#include "sim/rssi_log.h"

#include <algorithm>

#include "common/error.h"

namespace vp::sim {

namespace {
// Records are appended in time order, so binary search bounds the window.
auto window_range(const std::vector<BeaconRecord>& records, double t0,
                  double t1) {
  const auto lo = std::lower_bound(
      records.begin(), records.end(), t0,
      [](const BeaconRecord& r, double t) { return r.time_s < t; });
  const auto hi = std::lower_bound(
      lo, records.end(), t1,
      [](const BeaconRecord& r, double t) { return r.time_s < t; });
  return std::pair(lo, hi);
}
}  // namespace

void RssiLog::record(IdentityId id, const BeaconRecord& record) {
  auto& list = entries_[id];
  VP_REQUIRE(list.empty() || record.time_s >= list.back().time_s);
  list.push_back(record);
  ++total_;
}

std::vector<IdentityId> RssiLog::identities_heard(
    double t0, double t1, std::size_t min_samples) const {
  std::vector<IdentityId> ids;
  for (const auto& [id, records] : entries_) {
    const auto [lo, hi] = window_range(records, t0, t1);
    if (static_cast<std::size_t>(hi - lo) >= min_samples) ids.push_back(id);
  }
  return ids;
}

ts::Series RssiLog::rssi_series(IdentityId id, double t0, double t1) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return {};
  const auto [lo, hi] = window_range(it->second, t0, t1);
  ts::Series series;
  series.reserve(static_cast<std::size_t>(hi - lo));
  for (auto r = lo; r != hi; ++r) series.add(r->time_s, r->rssi_dbm);
  return series;
}

std::vector<BeaconRecord> RssiLog::records(IdentityId id, double t0,
                                           double t1) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return {};
  const auto [lo, hi] = window_range(it->second, t0, t1);
  return std::vector<BeaconRecord>(lo, hi);
}

std::size_t RssiLog::sample_count(IdentityId id, double t0, double t1) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return 0;
  const auto [lo, hi] = window_range(it->second, t0, t1);
  return static_cast<std::size_t>(hi - lo);
}

}  // namespace vp::sim
