// The paper's evaluation metrics (Section V-B): per-observer,
// per-detection-period detection rate (Eq. 10) and false positive rate
// (Eq. 11), averaged over all observers and periods (Eq. 12, 13).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "sim/observation.h"
#include "sim/world.h"

namespace vp::sim {

struct DetectionCounts {
  std::size_t detected_true = 0;   // N_T: illegitimate ids correctly flagged
  std::size_t illegitimate = 0;    // N_m + Σ N_s among heard identities
  std::size_t detected_false = 0;  // N_F: legitimate ids wrongly flagged
  std::size_t legitimate = 0;      // N_n among heard identities

  // DR is undefined when the observer heard no illegitimate identity.
  bool dr_defined() const { return illegitimate > 0; }
  double dr() const;   // requires dr_defined()
  bool fpr_defined() const { return legitimate > 0; }
  double fpr() const;  // requires fpr_defined()
};

// Scores one detector output against ground truth. `flagged` may contain
// duplicates or identities outside the window; both are ignored.
DetectionCounts score_detection(const std::vector<IdentityId>& flagged,
                                const ObservationWindow& window,
                                const GroundTruth& truth);

// Accumulates Eq. 12/13 averages across (observer, period) pairs.
//
// A window where the observer heard no illegitimate identity has no
// defined DR (Eq. 10 divides by zero), and likewise for FPR; such windows
// contribute to neither average. average_dr()/average_fpr() return 0.0
// when NO window had a defined rate — callers that must distinguish that
// from a true 0.0 (the run report does) check defined_dr_samples() /
// defined_fpr_samples() first, or use the optional-returning variants.
class RateAverager {
 public:
  void add(const DetectionCounts& counts);

  double average_dr() const;   // 0 if no defined sample
  double average_fpr() const;
  // Empty when no (observer, period) window had a defined rate.
  std::optional<double> average_dr_if_defined() const;
  std::optional<double> average_fpr_if_defined() const;
  // Number of windows that contributed to each average.
  std::size_t defined_dr_samples() const { return dr_n_; }
  std::size_t defined_fpr_samples() const { return fpr_n_; }
  // Older spellings of the sample counts, kept for existing callers.
  std::size_t dr_samples() const { return dr_n_; }
  std::size_t fpr_samples() const { return fpr_n_; }

 private:
  double dr_sum_ = 0.0;
  std::size_t dr_n_ = 0;
  double fpr_sum_ = 0.0;
  std::size_t fpr_n_ = 0;
};

}  // namespace vp::sim
