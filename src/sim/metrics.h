// The paper's evaluation metrics (Section V-B): per-observer,
// per-detection-period detection rate (Eq. 10) and false positive rate
// (Eq. 11), averaged over all observers and periods (Eq. 12, 13).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "sim/observation.h"
#include "sim/world.h"

namespace vp::sim {

struct DetectionCounts {
  std::size_t detected_true = 0;   // N_T: illegitimate ids correctly flagged
  std::size_t illegitimate = 0;    // N_m + Σ N_s among heard identities
  std::size_t detected_false = 0;  // N_F: legitimate ids wrongly flagged
  std::size_t legitimate = 0;      // N_n among heard identities

  // DR is undefined when the observer heard no illegitimate identity.
  bool dr_defined() const { return illegitimate > 0; }
  double dr() const;   // requires dr_defined()
  bool fpr_defined() const { return legitimate > 0; }
  double fpr() const;  // requires fpr_defined()
};

// Scores one detector output against ground truth. `flagged` may contain
// duplicates or identities outside the window; both are ignored.
DetectionCounts score_detection(const std::vector<IdentityId>& flagged,
                                const ObservationWindow& window,
                                const GroundTruth& truth);

// Accumulates Eq. 12/13 averages across (observer, period) pairs.
//
// A window where the observer heard no illegitimate identity has no
// defined DR (Eq. 10 divides by zero), and likewise for FPR; such windows
// contribute to neither average. average_dr()/average_fpr() return 0.0
// when NO window had a defined rate — callers that must distinguish that
// from a true 0.0 (the run report does) check defined_dr_samples() /
// defined_fpr_samples() first, or use the optional-returning variants.
//
// Samples land in named channels so one run can average several detector
// variants side by side (the fusion bench scores "single" and "fused"
// from the same replay); a second pass pooling into the first pass's
// averages is no longer possible unless both name the same channel. The
// channel-less overloads keep the original single-accumulator behaviour
// by reading and writing the default channel ("").
class RateAverager {
 public:
  void add(const DetectionCounts& counts) { add("", counts); }
  void add(std::string_view channel, const DetectionCounts& counts);

  double average_dr() const { return average_dr(""); }
  double average_fpr() const { return average_fpr(""); }
  double average_dr(std::string_view channel) const;  // 0 if no sample
  double average_fpr(std::string_view channel) const;
  // Empty when no (observer, period) window had a defined rate.
  std::optional<double> average_dr_if_defined() const {
    return average_dr_if_defined("");
  }
  std::optional<double> average_fpr_if_defined() const {
    return average_fpr_if_defined("");
  }
  std::optional<double> average_dr_if_defined(std::string_view channel) const;
  std::optional<double> average_fpr_if_defined(std::string_view channel) const;
  // Number of windows that contributed to each average.
  std::size_t defined_dr_samples() const { return defined_dr_samples(""); }
  std::size_t defined_fpr_samples() const { return defined_fpr_samples(""); }
  std::size_t defined_dr_samples(std::string_view channel) const;
  std::size_t defined_fpr_samples(std::string_view channel) const;
  // Older spellings of the sample counts, kept for existing callers.
  std::size_t dr_samples() const { return defined_dr_samples(""); }
  std::size_t fpr_samples() const { return defined_fpr_samples(""); }
  // Channel names seen by add(), sorted; the default channel appears only
  // once it has received a sample.
  std::vector<std::string> channels() const;

 private:
  struct Channel {
    double dr_sum = 0.0;
    std::size_t dr_n = 0;
    double fpr_sum = 0.0;
    std::size_t fpr_n = 0;
  };

  // nullptr when the channel has never received a sample.
  const Channel* find(std::string_view channel) const;

  std::map<std::string, Channel, std::less<>> channels_;
};

}  // namespace vp::sim
