#include "wire/report.h"

#include <utility>

#include "common/thread_pool.h"

namespace vp::wire {

namespace {

using obs::json::Array;
using obs::json::Object;
using obs::json::Value;

Value snapshot_json(const obs::HistogramSnapshot& s) {
  Object o;
  o.emplace("count", Value(s.count));
  o.emplace("sum", Value(s.sum));
  o.emplace("min", Value(s.min));
  o.emplace("max", Value(s.max));
  o.emplace("mean", Value(s.mean));
  o.emplace("p50", Value(s.p50));
  o.emplace("p95", Value(s.p95));
  o.emplace("p99", Value(s.p99));
  return Value(std::move(o));
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool require_number(const Value& object, const char* key,
                    const std::string& where, std::string* error) {
  const Value* v = object.find(key);
  if (v == nullptr || !v->is_number()) {
    return fail(error, where + ": missing or non-numeric \"" + key + "\"");
  }
  return true;
}

bool require_snapshot(const Value& row, const char* key,
                      const std::string& where, std::string* error) {
  const Value* snapshot = row.find(key);
  if (snapshot == nullptr || !snapshot->is_object()) {
    return fail(error,
                where + ": missing or non-object \"" + std::string(key) +
                    "\"");
  }
  for (const char* field :
       {"count", "sum", "min", "max", "mean", "p50", "p95", "p99"}) {
    if (!require_number(*snapshot, field, where + "." + key, error)) {
      return false;
    }
  }
  return true;
}

}  // namespace

Value build_wire_bench_report(
    const std::string& binary,
    const std::vector<WireBenchConfigResult>& configs) {
  Object doc;
  doc.emplace("schema", Value("voiceprint.wire_bench/v1"));
  doc.emplace("binary", Value(binary));
  doc.emplace("hardware_threads", Value(hardware_threads()));
  Array rows;
  for (const WireBenchConfigResult& c : configs) {
    Object row;
    row.emplace("label", Value(c.label));
    row.emplace("connections", Value(c.connections));
    row.emplace("observers", Value(c.observers));
    row.emplace("identities_per_observer", Value(c.identities_per_observer));
    row.emplace("beacon_rate_hz", Value(c.beacon_rate_hz));
    row.emplace("duration_s", Value(c.duration_s));
    row.emplace("backends", Value(c.backends));
    row.emplace("shards", Value(c.shards));
    row.emplace("threads", Value(c.threads));
    row.emplace("bytes_received", Value(c.bytes_received));
    row.emplace("frames_received", Value(c.frames_received));
    row.emplace("frames_ingested", Value(c.frames_ingested));
    row.emplace("frames_shed_invalid", Value(c.frames_shed_invalid));
    row.emplace("frames_shed_backpressure",
                Value(c.frames_shed_backpressure));
    row.emplace("beacons_ingested", Value(c.beacons_ingested));
    row.emplace("rounds_executed", Value(c.rounds_executed));
    row.emplace("failovers", Value(c.failovers));
    row.emplace("wall_s", Value(c.wall_s));
    row.emplace("ingest_beacons_per_s", Value(c.ingest_beacons_per_s));
    row.emplace("round_ns", snapshot_json(c.round_ns));
    rows.push_back(Value(std::move(row)));
  }
  doc.emplace("configs", Value(std::move(rows)));
  return Value(std::move(doc));
}

bool validate_wire_bench(const Value& report, std::string* error) {
  if (!report.is_object()) return fail(error, "report is not an object");
  const Value* schema = report.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "voiceprint.wire_bench/v1") {
    return fail(error, "schema is not \"voiceprint.wire_bench/v1\"");
  }
  const Value* binary = report.find("binary");
  if (binary == nullptr || !binary->is_string()) {
    return fail(error, "missing or non-string \"binary\"");
  }
  if (!require_number(report, "hardware_threads", "report", error)) {
    return false;
  }
  const Value* configs = report.find("configs");
  if (configs == nullptr || !configs->is_array()) {
    return fail(error, "missing or non-array \"configs\"");
  }
  if (configs->as_array().empty()) return fail(error, "\"configs\" is empty");
  std::size_t index = 0;
  for (const Value& row : configs->as_array()) {
    const std::string where = "configs[" + std::to_string(index++) + "]";
    if (!row.is_object()) return fail(error, where + " is not an object");
    const Value* label = row.find("label");
    if (label == nullptr || !label->is_string()) {
      return fail(error, where + ": missing or non-string \"label\"");
    }
    for (const char* key :
         {"connections", "observers", "identities_per_observer",
          "beacon_rate_hz", "duration_s", "backends", "shards", "threads",
          "bytes_received", "frames_received", "frames_ingested",
          "frames_shed_invalid", "frames_shed_backpressure",
          "beacons_ingested", "rounds_executed", "failovers", "wall_s",
          "ingest_beacons_per_s"}) {
      if (!require_number(row, key, where, error)) return false;
    }
    // The wire frame conservation law at quiescence: every decoded
    // frame was delivered or counted shed; the buffered gauge term is
    // zero once all connections have closed and drained. A bench that
    // silently loses frames is rejected here.
    if (row.find("frames_received")->as_number() !=
        row.find("frames_ingested")->as_number() +
            row.find("frames_shed_invalid")->as_number() +
            row.find("frames_shed_backpressure")->as_number()) {
      return fail(error,
                  where + ": frames_received != frames_ingested + "
                          "frames_shed_invalid + frames_shed_backpressure");
    }
    if (row.find("beacons_ingested")->as_number() >
        row.find("frames_ingested")->as_number()) {
      return fail(error, where + ": beacons_ingested > frames_ingested");
    }
    if (!require_snapshot(row, "round_ns", where, error)) return false;
  }
  return true;
}

}  // namespace vp::wire
