#include "wire/transport.h"

#include <algorithm>
#include <deque>
#include <mutex>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"

namespace vp::wire {

namespace {

// ---------------------------------------------------------------- Pipe

// One direction of the pipe: a bounded byte queue plus the writer's
// closed flag. Shared by both endpoints, guarded by its own mutex.
struct PipeChannel {
  std::mutex mutex;
  std::deque<std::uint8_t> bytes;
  std::size_t capacity = 0;
  bool writer_closed = false;
};

class PipeEndpoint final : public Connection {
 public:
  PipeEndpoint(std::shared_ptr<PipeChannel> out, std::shared_ptr<PipeChannel> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~PipeEndpoint() override { PipeEndpoint::close(); }

  std::size_t send(std::span<const std::uint8_t> bytes) override {
    std::lock_guard<std::mutex> lock(out_->mutex);
    if (out_->writer_closed) return 0;
    const std::size_t take =
        std::min(bytes.size(), out_->capacity - out_->bytes.size());
    out_->bytes.insert(out_->bytes.end(), bytes.begin(),
                       bytes.begin() + static_cast<std::ptrdiff_t>(take));
    return take;
  }

  std::ptrdiff_t receive(std::span<std::uint8_t> out) override {
    std::lock_guard<std::mutex> lock(in_->mutex);
    const std::size_t take = std::min(out.size(), in_->bytes.size());
    std::copy_n(in_->bytes.begin(), take, out.begin());
    in_->bytes.erase(in_->bytes.begin(),
                     in_->bytes.begin() + static_cast<std::ptrdiff_t>(take));
    if (take == 0 && in_->writer_closed) return -1;
    return static_cast<std::ptrdiff_t>(take);
  }

  void close() override {
    // Closing an endpoint ends its outbound direction; the peer drains
    // what was already queued, then sees -1.
    std::lock_guard<std::mutex> lock(out_->mutex);
    out_->writer_closed = true;
  }

 private:
  std::shared_ptr<PipeChannel> out_;
  std::shared_ptr<PipeChannel> in_;
};

// ----------------------------------------------------------------- TCP

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  VP_ENSURE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

class TcpConnection final : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {
    int one = 1;
    // Latency over batching: frames are 50 bytes and the bench measures
    // round-trip freshness, so Nagle stays off.
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override { TcpConnection::close(); }

  std::size_t send(std::span<const std::uint8_t> bytes) override {
    if (fd_ < 0 || bytes.empty()) return 0;
    const ssize_t n =
        ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return 0;
    // Reset or shutdown: the peer is gone, nothing more will be taken.
    peer_lost_ = true;
    return 0;
  }

  std::ptrdiff_t receive(std::span<std::uint8_t> out) override {
    if (fd_ < 0) return -1;
    if (out.empty()) return 0;
    const ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
    if (n > 0) return static_cast<std::ptrdiff_t>(n);
    if (n == 0) return -1;  // orderly shutdown, kernel buffer drained
    if (errno == EAGAIN || errno == EWOULDBLOCK) return peer_lost_ ? -1 : 0;
    return -1;
  }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  bool peer_lost_ = false;
};

}  // namespace

PipePair make_pipe(std::size_t capacity_bytes) {
  VP_REQUIRE(capacity_bytes >= 1);
  auto to_server = std::make_shared<PipeChannel>();
  auto to_client = std::make_shared<PipeChannel>();
  to_server->capacity = capacity_bytes;
  to_client->capacity = capacity_bytes;
  PipePair pair;
  pair.client = std::make_unique<PipeEndpoint>(to_server, to_client);
  pair.server = std::make_unique<PipeEndpoint>(to_client, to_server);
  return pair;
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  VP_ENSURE(fd_ >= 0);
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw Error("TcpListener: cannot bind 127.0.0.1:" + std::to_string(port) +
                ": " + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  VP_ENSURE(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(fd_);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Connection> TcpListener::accept() {
  if (fd_ < 0) return nullptr;
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) return nullptr;
  set_nonblocking(conn);
  return std::make_unique<TcpConnection>(conn);
}

std::unique_ptr<Connection> tcp_connect(const std::string& host,
                                        std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  set_nonblocking(fd);
  return std::make_unique<TcpConnection>(fd);
}

}  // namespace vp::wire
