// Replay-side wire helpers (DESIGN.md §14): encode a fleet's beacons
// into the VPWB byte stream one connection carries, and pump pre-encoded
// bytes through a non-blocking Connection. Used by tools/vp_ingest_client,
// bench/wire_throughput and tests/test_wire.cpp so all three send
// byte-identical streams for the same fleet slice.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/replay_source.h"
#include "wire/frame.h"
#include "wire/transport.h"

namespace vp::wire {

struct FleetStreamOptions {
  // HEARTBEAT cadence per observer on the stream clock; 0 disables.
  // Heartbeats keep the server-side watermark moving for observers
  // whose receptions are sparse.
  double heartbeat_period_s = 1.0;
  // Stream time stamped on each observer's final CLOSE frame; use the
  // trace end so the server flushes every session's last round.
  double close_time_s = 0.0;
};

// The complete byte stream one connection sends to replay the beacons
// of `observers` (a subset of the fleet's observer ids, typically a
// round-robin slice): an OPEN per observer, the observers' beacons in
// fleet order interleaved with heartbeats, then a CLOSE per observer.
// Deterministic: same fleet + same observers + same options = same
// bytes.
std::vector<std::uint8_t> encode_fleet_stream(
    const std::vector<sim::FleetBeacon>& fleet,
    const std::vector<std::uint64_t>& observers,
    const FleetStreamOptions& options);

// Drives pre-encoded bytes through a non-blocking connection in bounded
// chunks. send_some() is the single step (returns bytes accepted; 0
// means backpressure — retry later); done() reports completion.
class StreamSender {
 public:
  StreamSender(Connection* connection, std::vector<std::uint8_t> bytes,
               std::size_t chunk_bytes = 4096);

  std::size_t send_some();
  bool done() const { return cursor_ >= bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - cursor_; }

 private:
  Connection* connection_;
  std::vector<std::uint8_t> bytes_;
  std::size_t chunk_bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace vp::wire
