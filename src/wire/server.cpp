#include "wire/server.h"

#include <algorithm>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/runtime.h"

namespace vp::wire {

namespace {

// Registry instruments, resolved once. Updates are gated on
// obs::enabled(); the plain Stats mirror is always maintained.
struct Sinks {
  obs::Counter* bytes_received;
  obs::Counter* frames_received;
  obs::Counter* frames_ingested;
  obs::Counter* frames_shed_invalid;
  obs::Counter* frames_shed_backpressure;
  obs::Counter* reject_bad_magic;
  obs::Counter* reject_bad_version;
  obs::Counter* reject_bad_checksum;
  obs::Counter* reject_bad_type;
  obs::Counter* reject_replayed_seq;
  obs::Counter* beacons_ingested;
  obs::Counter* controls_ingested;
  obs::Counter* connections_opened;
  obs::Counter* connections_closed;
  obs::Counter* truncated_tails;
  obs::Counter* failovers;
  obs::Counter* polls;
  obs::Counter* drains;
  obs::Gauge* frames_buffered;
  obs::Gauge* connections_active;
};

const Sinks& sinks() {
  static const Sinks s = [] {
    obs::MetricsRegistry& r = obs::registry();
    return Sinks{
        .bytes_received = &r.counter("wire.bytes_received"),
        .frames_received = &r.counter("wire.frames_received"),
        .frames_ingested = &r.counter("wire.frames_ingested"),
        .frames_shed_invalid = &r.counter("wire.frames_shed_invalid"),
        .frames_shed_backpressure =
            &r.counter("wire.frames_shed_backpressure"),
        .reject_bad_magic = &r.counter("wire.reject.bad_magic"),
        .reject_bad_version = &r.counter("wire.reject.bad_version"),
        .reject_bad_checksum = &r.counter("wire.reject.bad_checksum"),
        .reject_bad_type = &r.counter("wire.reject.bad_type"),
        .reject_replayed_seq = &r.counter("wire.reject.replayed_seq"),
        .beacons_ingested = &r.counter("wire.beacons_ingested"),
        .controls_ingested = &r.counter("wire.controls_ingested"),
        .connections_opened = &r.counter("wire.connections_opened"),
        .connections_closed = &r.counter("wire.connections_closed"),
        .truncated_tails = &r.counter("wire.truncated_tails"),
        .failovers = &r.counter("wire.failovers"),
        .polls = &r.counter("wire.polls"),
        .drains = &r.counter("wire.drains"),
        .frames_buffered = &r.gauge("wire.frames_buffered"),
        .connections_active = &r.gauge("wire.connections_active"),
    };
  }();
  return s;
}

void count(obs::Counter* sink, std::uint64_t& stat, std::uint64_t n = 1) {
  stat += n;
  if (obs::enabled()) sink->add(static_cast<double>(n));
}

}  // namespace

IngestServer::IngestServer(IngestServerConfig config,
                           std::vector<service::DetectionService*> backends)
    : config_(std::move(config)),
      backends_(std::move(backends)),
      ring_(std::max<std::size_t>(backends_.size(), 1),
            std::max<std::size_t>(config_.vnodes_per_backend, 1)) {
  VP_REQUIRE(!backends_.empty());
  for (service::DetectionService* backend : backends_) {
    VP_REQUIRE(backend != nullptr);
  }
  VP_REQUIRE(config_.recv_buffer_bytes >= kFrameBytes);
  VP_REQUIRE(config_.read_chunk_bytes >= 1);
  VP_REQUIRE(config_.max_frames_buffered >= 1);
  scratch_.resize(std::min(config_.read_chunk_bytes, std::size_t{64} * 1024));
}

std::uint64_t IngestServer::add_connection(
    std::unique_ptr<Connection> connection) {
  VP_REQUIRE(connection != nullptr);
  auto conn = std::make_unique<Conn>();
  conn->id = next_conn_id_++;
  conn->transport = std::move(connection);
  conn->decoder = FrameDecoder(config_.recv_buffer_bytes);
  conns_.push_back(std::move(conn));
  count(sinks().connections_opened, stats_.connections_opened);
  publish_gauges();
  return conns_.back()->id;
}

void IngestServer::decode_available(Conn& conn) {
  Frame frame;
  RejectReason reason = RejectReason::kBadMagic;
  for (;;) {
    const DecodeStatus status = conn.decoder.next(frame, &reason);
    if (status == DecodeStatus::kNeedMore) break;
    count(sinks().frames_received, stats_.frames_received);
    if (status == DecodeStatus::kRejected) {
      count(sinks().frames_shed_invalid, stats_.frames_shed_invalid);
      switch (reason) {
        case RejectReason::kBadMagic:
          count(sinks().reject_bad_magic, stats_.reject_bad_magic);
          break;
        case RejectReason::kBadVersion:
          count(sinks().reject_bad_version, stats_.reject_bad_version);
          break;
        case RejectReason::kBadChecksum:
          count(sinks().reject_bad_checksum, stats_.reject_bad_checksum);
          break;
        case RejectReason::kBadType:
          count(sinks().reject_bad_type, stats_.reject_bad_type);
          break;
        case RejectReason::kReplayedSeq:
          count(sinks().reject_replayed_seq, stats_.reject_replayed_seq);
          break;
      }
      continue;
    }
    if (conn.frames.size() >= config_.max_frames_buffered) {
      // Deterministic backpressure: the queue drains only at drain()
      // points, so which frames are shed depends on the byte stream and
      // the poll cadence, never on wall-clock timing.
      count(sinks().frames_shed_backpressure,
            stats_.frames_shed_backpressure);
      continue;
    }
    conn.frames.push_back(frame);
    ++frames_buffered_;
  }
}

std::size_t IngestServer::poll() {
  std::size_t total = 0;
  for (const std::unique_ptr<Conn>& entry : conns_) {
    Conn& conn = *entry;
    if (conn.reaped || conn.peer_closed) continue;
    std::size_t budget = config_.read_chunk_bytes;
    while (budget > 0) {
      const std::size_t want = std::min(
          {budget, conn.decoder.capacity_remaining(), scratch_.size()});
      if (want == 0) break;
      const std::ptrdiff_t n =
          conn.transport->receive(std::span<std::uint8_t>(scratch_.data(),
                                                          want));
      if (n < 0) {
        conn.peer_closed = true;
        break;
      }
      if (n == 0) break;
      const std::size_t got = static_cast<std::size_t>(n);
      VP_ENSURE(conn.decoder.push(std::span<const std::uint8_t>(
                    scratch_.data(), got)) == got);
      count(sinks().bytes_received, stats_.bytes_received, got);
      total += got;
      budget -= got;
      decode_available(conn);
    }
    decode_available(conn);
  }
  count(sinks().polls, stats_.polls);
  publish_gauges();
  return total;
}

void IngestServer::deliver(Conn& conn, const Frame& frame) {
  service::DetectionService& backend = backend_for(frame.observer);
  switch (frame.type) {
    case FrameType::kOpen:
      backend.open(frame.observer);
      count(sinks().controls_ingested, stats_.controls_ingested);
      break;
    case FrameType::kBeacon:
      // The service's own admission front (session cap, rate limit,
      // identity cap, ordering, validation) accounts for the beacon
      // from here; at the wire layer it is ingested either way.
      backend.ingest(frame.observer, frame.identity, frame.time_s,
                     frame.rssi_dbm);
      count(sinks().beacons_ingested, stats_.beacons_ingested);
      break;
    case FrameType::kHeartbeat:
      backend.advance_session_to(frame.observer, frame.time_s);
      count(sinks().controls_ingested, stats_.controls_ingested);
      break;
    case FrameType::kClose:
      // Advance to the final stream time now; the session itself closes
      // after this drain's pump, so rounds the advance prepared run
      // instead of being shed as rounds_shed_closed.
      backend.advance_session_to(frame.observer, frame.time_s);
      pending_closes_.push_back(frame.observer);
      count(sinks().controls_ingested, stats_.controls_ingested);
      break;
  }
  count(sinks().frames_ingested, stats_.frames_ingested);
  conn.delivered_time_s = std::max(conn.delivered_time_s, frame.time_s);
  conn.delivered_any = true;
}

std::size_t IngestServer::drain() {
  // Connection-major FIFO delivery: deterministic given the decoded
  // streams, independent of arrival interleaving.
  std::size_t delivered = 0;
  for (const std::unique_ptr<Conn>& entry : conns_) {
    Conn& conn = *entry;
    while (!conn.frames.empty()) {
      const Frame frame = conn.frames.front();
      conn.frames.pop_front();
      --frames_buffered_;
      deliver(conn, frame);
      ++delivered;
    }
  }

  // Pump each distinct backend once, slot order (slots may share one
  // service).
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (backends_[j] == backends_[i]) {
        seen = true;
        break;
      }
    }
    if (!seen) backends_[i]->pump();
  }

  for (std::uint64_t session : pending_closes_) {
    backend_for(session).close(session);
  }
  pending_closes_.clear();

  // Reap connections whose peer is gone and whose data is fully
  // delivered; a non-empty decode buffer at that point is a frame the
  // peer never finished.
  for (const std::unique_ptr<Conn>& entry : conns_) {
    Conn& conn = *entry;
    if (conn.reaped || !conn.peer_closed || !conn.frames.empty()) continue;
    if (conn.decoder.buffered_bytes() > 0) {
      count(sinks().truncated_tails, stats_.truncated_tails);
    }
    conn.reaped = true;
    conn.transport.reset();
    closed_watermark_s_ = std::max(closed_watermark_s_, conn.delivered_time_s);
    count(sinks().connections_closed, stats_.connections_closed);
  }

  count(sinks().drains, stats_.drains);
  publish_gauges();
  return delivered;
}

void IngestServer::replace_backend(std::size_t index,
                                   service::DetectionService* standby) {
  VP_REQUIRE(index < backends_.size());
  VP_REQUIRE(standby != nullptr);
  // Quiescence: a buffered frame routed to the old service would
  // straddle the swap; drain() first.
  VP_REQUIRE(frames_buffered_ == 0);
  backends_[index] = standby;
  count(sinks().failovers, stats_.failovers);
}

double IngestServer::watermark() const {
  bool any_open = false;
  double min_open = 0.0;
  for (const std::unique_ptr<Conn>& entry : conns_) {
    const Conn& conn = *entry;
    if (conn.reaped) continue;
    const double t = conn.delivered_any ? conn.delivered_time_s : 0.0;
    min_open = any_open ? std::min(min_open, t) : t;
    any_open = true;
  }
  return any_open ? min_open : closed_watermark_s_;
}

std::size_t IngestServer::connections_active() const {
  std::size_t n = 0;
  for (const std::unique_ptr<Conn>& entry : conns_) {
    if (!entry->reaped) ++n;
  }
  return n;
}

service::DetectionService& IngestServer::backend_for(
    std::uint64_t observer) const {
  return *backends_[ring_.route(observer)];
}

void IngestServer::publish_gauges() {
  // Delta-published like the service gauges: several servers may share
  // one registry over a process lifetime (sequential bench configs).
  if (!obs::enabled()) return;
  const std::size_t active = connections_active();
  if (frames_buffered_ != published_buffered_) {
    obs::Gauge& g = *sinks().frames_buffered;
    g.set(g.value() + static_cast<double>(frames_buffered_) -
          static_cast<double>(published_buffered_));
    published_buffered_ = frames_buffered_;
  }
  if (active != published_active_) {
    obs::Gauge& g = *sinks().connections_active;
    g.set(g.value() + static_cast<double>(active) -
          static_cast<double>(published_active_));
    published_active_ = active;
  }
}

}  // namespace vp::wire
