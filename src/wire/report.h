// BENCH_wire.json schema ("voiceprint.wire_bench/v1"): the
// bench/wire_throughput sweep writes one document summarising each
// (connections × beacon rate) configuration — the wire frame
// conservation counters, sustained ingest throughput over the loopback
// socket, and the per-round detector latency percentiles.
//
// Like service/report.h, build and validate live together so the
// emitted document and the check (tools/check_run_report --wire-bench,
// the smoke test, and the unit tests) cannot drift apart.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace vp::wire {

// One sweep configuration's results. Frame counters are quiescent-state
// values (all connections closed, queues drained), so the conservation
// law has no buffered term here.
struct WireBenchConfigResult {
  std::string label;  // e.g. "c4_rate10"
  std::size_t connections = 0;
  std::size_t observers = 0;
  std::size_t identities_per_observer = 0;
  double beacon_rate_hz = 0.0;
  double duration_s = 0.0;  // stream time covered
  std::size_t backends = 0;
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_ingested = 0;
  std::uint64_t frames_shed_invalid = 0;
  std::uint64_t frames_shed_backpressure = 0;
  std::uint64_t beacons_ingested = 0;
  std::uint64_t rounds_executed = 0;
  std::uint64_t failovers = 0;
  double wall_s = 0.0;                 // client connect → last drain
  double ingest_beacons_per_s = 0.0;   // beacons_ingested / wall_s
  obs::HistogramSnapshot round_ns;     // per-round detector latency
};

// Builds the voiceprint.wire_bench/v1 document.
obs::json::Value build_wire_bench_report(
    const std::string& binary,
    const std::vector<WireBenchConfigResult>& configs);

// True when `report` conforms to voiceprint.wire_bench/v1, including
// the frame conservation law at quiescence
// (frames_received = frames_ingested + shed_invalid + shed_backpressure).
// On failure, `error` (if non-null) receives a one-line description.
bool validate_wire_bench(const obs::json::Value& report, std::string* error);

}  // namespace vp::wire
