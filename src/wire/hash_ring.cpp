#include "wire/hash_ring.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace vp::wire {

HashRing::HashRing(std::size_t backends, std::size_t vnodes_per_backend)
    : backends_(backends) {
  VP_REQUIRE(backends >= 1);
  VP_REQUIRE(vnodes_per_backend >= 1);
  points_.reserve(backends * vnodes_per_backend);
  for (std::size_t b = 0; b < backends; ++b) {
    for (std::size_t v = 0; v < vnodes_per_backend; ++v) {
      points_.push_back(Point{
          .position = mix64(0x0b5e2ea1 + static_cast<std::uint64_t>(b),
                            static_cast<std::uint64_t>(v)),
          .backend = static_cast<std::uint32_t>(b)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              if (a.position != b.position) return a.position < b.position;
              return a.backend < b.backend;  // stable under collisions
            });
}

std::size_t HashRing::route(std::uint64_t key) const {
  const std::uint64_t position = mix64(0x0b5e2e0b, key);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), position,
      [](const Point& p, std::uint64_t pos) { return p.position < pos; });
  const Point& owner = it == points_.end() ? points_.front() : *it;
  return owner.backend;
}

}  // namespace vp::wire
