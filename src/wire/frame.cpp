#include "wire/frame.h"

#include <algorithm>

#include "common/binio.h"
#include "common/error.h"

namespace vp::wire {

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  ByteWriter writer(out);
  for (std::uint8_t b : kWireMagic) writer.put_u8(b);
  writer.put_u8(kWireVersion);
  writer.put_u8(static_cast<std::uint8_t>(frame.type));
  writer.put_u64(frame.seq);
  writer.put_u64(frame.observer);
  writer.put_u32(frame.identity);
  writer.put_f64(frame.time_s);
  writer.put_f64(frame.rssi_dbm);
  VP_ASSERT(out.size() - start == kFramePayloadBytes);
  writer.put_u64(fnv1a64(
      std::span<const std::uint8_t>(out.data() + start, kFramePayloadBytes)));
  VP_ASSERT(out.size() - start == kFrameBytes);
}

void FrameEncoder::append(FrameType type, std::uint64_t observer,
                          IdentityId id, double time_s, double rssi_dbm,
                          std::vector<std::uint8_t>& out) {
  Frame frame;
  frame.type = type;
  frame.seq = next_seq_++;
  frame.observer = observer;
  frame.identity = id;
  frame.time_s = time_s;
  frame.rssi_dbm = rssi_dbm;
  encode_frame(frame, out);
}

void FrameEncoder::append_open(std::uint64_t observer, double time_s,
                               std::vector<std::uint8_t>& out) {
  append(FrameType::kOpen, observer, 0, time_s, 0.0, out);
}

void FrameEncoder::append_beacon(std::uint64_t observer, IdentityId id,
                                 double time_s, double rssi_dbm,
                                 std::vector<std::uint8_t>& out) {
  append(FrameType::kBeacon, observer, id, time_s, rssi_dbm, out);
}

void FrameEncoder::append_heartbeat(std::uint64_t observer, double time_s,
                                    std::vector<std::uint8_t>& out) {
  append(FrameType::kHeartbeat, observer, 0, time_s, 0.0, out);
}

void FrameEncoder::append_close(std::uint64_t observer, double time_s,
                                std::vector<std::uint8_t>& out) {
  append(FrameType::kClose, observer, 0, time_s, 0.0, out);
}

FrameDecoder::FrameDecoder(std::size_t max_buffered_bytes)
    : max_bytes_(std::max(max_buffered_bytes, kFrameBytes)) {}

std::size_t FrameDecoder::push(std::span<const std::uint8_t> bytes) {
  // Compact lazily: only when the tail would not fit, so the common
  // case (steady decode keeping the buffer near-empty) never memmoves.
  if (buffer_.size() + bytes.size() > max_bytes_ && consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const std::size_t take =
      std::min(bytes.size(), max_bytes_ - buffer_.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.begin() + take);
  return take;
}

std::size_t FrameDecoder::capacity_remaining() const {
  return max_bytes_ - buffered_bytes();
}

DecodeStatus FrameDecoder::next(Frame& out, RejectReason* reason) {
  const auto reject = [&](RejectReason r, std::size_t consume) {
    consumed_ += consume;
    if (reason != nullptr) *reason = r;
    return DecodeStatus::kRejected;
  };

  const std::uint8_t* data = buffer_.data() + consumed_;
  std::size_t have = buffered_bytes();

  // Resynchronise: find the first position whose bytes are a (possibly
  // partial) prefix of the magic. Everything before it is junk —
  // consumed in one step and reported as a single kBadMagic reject, so
  // a run of garbage cannot inflate the frame counters.
  std::size_t sync = 0;
  while (sync < have) {
    const std::size_t probe = std::min(have - sync, sizeof(kWireMagic));
    if (std::equal(data + sync, data + sync + probe, kWireMagic)) break;
    ++sync;
  }
  if (sync > 0) return reject(RejectReason::kBadMagic, sync);
  if (have < kFrameBytes) return DecodeStatus::kNeedMore;

  // Full frame present and magic-aligned. Version gates everything —
  // it owns the layout, so an unknown version cannot be checksummed —
  // then the checksum gates every remaining field.
  // The reads below cannot fail (a full frame is present); VP_ENSURE
  // rather than VP_ASSERT because the getters are side-effecting and
  // debug-only checks compile out.
  ByteReader reader(std::span<const std::uint8_t>(data, kFrameBytes));
  VP_ENSURE(reader.skip(sizeof(kWireMagic)));
  std::uint8_t version = 0;
  VP_ENSURE(reader.get_u8(version));
  if (version != kWireVersion) {
    return reject(RejectReason::kBadVersion, kFrameBytes);
  }
  const std::uint64_t expected =
      fnv1a64(std::span<const std::uint8_t>(data, kFramePayloadBytes));
  std::uint64_t trailer = 0;
  {
    ByteReader tail(std::span<const std::uint8_t>(data + kFramePayloadBytes,
                                                  sizeof(std::uint64_t)));
    VP_ENSURE(tail.get_u64(trailer));
  }
  if (trailer != expected) {
    return reject(RejectReason::kBadChecksum, kFrameBytes);
  }

  std::uint8_t type = 0;
  Frame frame;
  VP_ENSURE(reader.get_u8(type) && reader.get_u64(frame.seq) &&
            reader.get_u64(frame.observer) && reader.get_u32(frame.identity) &&
            reader.get_f64(frame.time_s) && reader.get_f64(frame.rssi_dbm));
  if (type < static_cast<std::uint8_t>(FrameType::kOpen) ||
      type > static_cast<std::uint8_t>(FrameType::kClose)) {
    return reject(RejectReason::kBadType, kFrameBytes);
  }
  frame.type = static_cast<FrameType>(type);
  if (frame.seq <= last_seq_) {
    return reject(RejectReason::kReplayedSeq, kFrameBytes);
  }

  last_seq_ = frame.seq;
  consumed_ += kFrameBytes;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  out = frame;
  return DecodeStatus::kFrame;
}

}  // namespace vp::wire
