// VPWB beacon wire format and streaming decoder (DESIGN.md §14).
//
// The wire boundary is the first untrusted surface in the deployment: a
// roadside collector receives beacon reports from radios it does not
// control, over transports that fragment, truncate and corrupt. Every
// frame therefore carries its own integrity evidence, and the decoder
// rejects damage *structurally* — before any field can touch a session's
// stream clock — mirroring the PR 5 validation front at the byte layer.
//
// Frame layout (fixed 50 bytes, little-endian, binio.h field encoding):
//
//   offset  size  field
//        0     4  magic "VPWB"
//        4     1  version (1)
//        5     1  type (1=OPEN, 2=BEACON, 3=HEARTBEAT, 4=CLOSE)
//        6     8  seq — per-connection, strictly increasing from 1
//       14     8  observer id (the service session id)
//       22     4  identity id (0 for control frames)
//       26     8  stream time [s], IEEE-754 bits
//       34     8  RSSI [dBm], IEEE-754 bits
//       42     8  FNV-1a 64 over bytes [0, 42)
//
// Control frames reuse the beacon layout so the decoder is one code
// path: OPEN announces an observer (time = first beacon's stream time or
// 0), HEARTBEAT advances the observer's stream clock without a
// reception (the watermark path for quiet radios), CLOSE is the last
// frame an observer sends and carries its final stream time.
//
// The decoder is a push parser: feed it whatever bytes arrived, ask for
// frames until it reports kNeedMore. Garbage between frames is skipped
// by resynchronising on the next possible magic, one reject per junk
// run; a frame that fails version/checksum/type/sequence checks is
// consumed whole and reported with its reason. A replayed or reordered
// sequence number is rejected here — the transport guarantees in-order
// delivery, so a regressing seq can only be duplication or splicing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"

namespace vp::wire {

inline constexpr std::size_t kFrameBytes = 50;
inline constexpr std::size_t kFramePayloadBytes = 42;  // checksummed prefix
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::uint8_t kWireMagic[4] = {'V', 'P', 'W', 'B'};

enum class FrameType : std::uint8_t {
  kOpen = 1,
  kBeacon = 2,
  kHeartbeat = 3,
  kClose = 4,
};

struct Frame {
  FrameType type = FrameType::kBeacon;
  std::uint64_t seq = 0;
  std::uint64_t observer = 0;
  IdentityId identity = 0;
  double time_s = 0.0;
  double rssi_dbm = 0.0;
};

// Appends the 50-byte encoding of `frame` to `out`. The caller owns seq
// assignment; FrameEncoder below stamps the per-connection sequence.
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

// Per-connection encoder: stamps strictly increasing sequence numbers
// starting at 1, the decoder's replay-rejection contract.
class FrameEncoder {
 public:
  void append_open(std::uint64_t observer, double time_s,
                   std::vector<std::uint8_t>& out);
  void append_beacon(std::uint64_t observer, IdentityId id, double time_s,
                     double rssi_dbm, std::vector<std::uint8_t>& out);
  void append_heartbeat(std::uint64_t observer, double time_s,
                        std::vector<std::uint8_t>& out);
  void append_close(std::uint64_t observer, double time_s,
                    std::vector<std::uint8_t>& out);

  std::uint64_t frames_encoded() const { return next_seq_ - 1; }

 private:
  void append(FrameType type, std::uint64_t observer, IdentityId id,
              double time_s, double rssi_dbm, std::vector<std::uint8_t>& out);

  std::uint64_t next_seq_ = 1;
};

enum class DecodeStatus : std::uint8_t {
  kFrame,     // a valid frame was produced
  kNeedMore,  // buffer holds at most a frame prefix; feed more bytes
  kRejected,  // damage consumed and counted; reason tells why
};

enum class RejectReason : std::uint8_t {
  kBadMagic,     // junk between frames (one reject per resync run)
  kBadVersion,   // unknown version byte under a valid checksum
  kBadChecksum,  // FNV-1a trailer mismatch: corruption or truncation
  kBadType,      // checksum-valid frame with an unknown type
  kReplayedSeq,  // sequence regressed: duplicated or spliced frame
};

// Streaming frame parser over one connection's byte arrivals. Bounded:
// push() accepts at most capacity_remaining() bytes, so a peer that
// stops being decodable cannot grow the buffer past its cap — the
// per-connection backpressure bound the IngestServer relies on.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_buffered_bytes = 64 * 1024);

  // Appends bytes to the decode buffer; returns how many were taken
  // (bytes past the cap are refused, the caller retries after next()).
  std::size_t push(std::span<const std::uint8_t> bytes);

  // Extracts the next frame. kFrame fills `out`; kRejected fills
  // `reason` (when non-null) and has consumed the damaged bytes;
  // kNeedMore means the buffer holds only a frame prefix.
  DecodeStatus next(Frame& out, RejectReason* reason = nullptr);

  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }
  std::size_t capacity_remaining() const;
  // Highest accepted sequence number (0 before the first frame).
  std::uint64_t last_seq() const { return last_seq_; }

 private:
  std::size_t max_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  std::uint64_t last_seq_ = 0;
};

}  // namespace vp::wire
