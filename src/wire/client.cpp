#include "wire/client.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.h"

namespace vp::wire {

std::vector<std::uint8_t> encode_fleet_stream(
    const std::vector<sim::FleetBeacon>& fleet,
    const std::vector<std::uint64_t>& observers,
    const FleetStreamOptions& options) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder encoder;
  // Sorted: OPEN/CLOSE order must not depend on the caller's slice
  // order, or two runs of the same slice would differ byte-for-byte.
  std::vector<std::uint64_t> sorted(observers.begin(), observers.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  for (std::uint64_t observer : sorted) {
    encoder.append_open(observer, 0.0, bytes);
  }

  double next_heartbeat = options.heartbeat_period_s;
  for (const sim::FleetBeacon& beacon : fleet) {
    if (!std::binary_search(sorted.begin(), sorted.end(), beacon.observer)) {
      continue;
    }
    if (options.heartbeat_period_s > 0.0) {
      // Heartbeats ride the stream clock: before the first beacon past
      // a period boundary, every observer on this connection reports
      // "alive through the boundary". Stamped with the boundary, not
      // the beacon time, so the stream stays time-ordered per observer.
      while (beacon.time_s >= next_heartbeat) {
        for (std::uint64_t observer : sorted) {
          encoder.append_heartbeat(observer, next_heartbeat, bytes);
        }
        next_heartbeat += options.heartbeat_period_s;
      }
    }
    encoder.append_beacon(beacon.observer, beacon.id, beacon.time_s,
                          beacon.rssi_dbm, bytes);
  }

  for (std::uint64_t observer : sorted) {
    encoder.append_close(observer, options.close_time_s, bytes);
  }
  return bytes;
}

StreamSender::StreamSender(Connection* connection,
                           std::vector<std::uint8_t> bytes,
                           std::size_t chunk_bytes)
    : connection_(connection),
      bytes_(std::move(bytes)),
      chunk_bytes_(std::max<std::size_t>(chunk_bytes, 1)) {
  VP_REQUIRE(connection_ != nullptr);
}

std::size_t StreamSender::send_some() {
  if (done()) return 0;
  const std::size_t want = std::min(chunk_bytes_, remaining());
  const std::size_t sent = connection_->send(
      std::span<const std::uint8_t>(bytes_.data() + cursor_, want));
  cursor_ += sent;
  return sent;
}

}  // namespace vp::wire
