// Byte transports for the wire ingestion tier (DESIGN.md §14).
//
// The IngestServer speaks to an abstract non-blocking byte stream, so
// the same server code runs over two transports:
//   * Pipe — an in-memory bounded duplex channel. Deterministic and
//     hermetic: tests drive both endpoints from one thread, choose the
//     exact chunk sizes that cross frame boundaries, and never touch
//     the network stack (the CI sanitizer jobs stay socket-free).
//   * TCP — loopback sockets (IPv4 127.0.0.1), the deployment-shaped
//     path the throughput bench and the vp_ingest_* tools exercise.
//
// All operations are non-blocking: send() reports how many bytes the
// transport accepted (0 under backpressure — the caller keeps the rest
// and retries), receive() reports 0 when nothing is pending and -1 once
// the peer is gone *and* every byte it sent has been drained, so no
// tail data is lost on close.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace vp::wire {

class Connection {
 public:
  virtual ~Connection() = default;

  // Queues up to bytes.size() bytes; returns how many were accepted
  // (possibly 0 when the transport is full or the peer is gone). Never
  // blocks, never throws on overload.
  virtual std::size_t send(std::span<const std::uint8_t> bytes) = 0;

  // Reads up to out.size() bytes. Returns the count read, 0 when none
  // are pending, -1 when the peer closed and all its bytes are drained.
  virtual std::ptrdiff_t receive(std::span<std::uint8_t> out) = 0;

  // Closes this endpoint; the peer drains buffered bytes then sees -1.
  virtual void close() = 0;
};

// An in-memory duplex pair: bytes sent on one endpoint are received on
// the other, each direction bounded by capacity_bytes (send returns a
// short count when full — the deterministic backpressure tests rely on
// this). Endpoints are internally locked, so a bench may pump the two
// ends from different threads; the shared state outlives both.
struct PipePair {
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;
};
PipePair make_pipe(std::size_t capacity_bytes = 16 * 1024);

// Non-blocking loopback TCP listener. Port 0 binds an ephemeral port
// (read it back with port()). Throws vp::Error when the socket cannot
// be created or bound.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  // Accepts one pending connection; nullptr when none is waiting.
  std::unique_ptr<Connection> accept();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// Connects to host:port (blocking connect — loopback completes
// immediately — then the socket is switched to non-blocking). Returns
// nullptr on refusal/failure.
std::unique_ptr<Connection> tcp_connect(const std::string& host,
                                        std::uint16_t port);

}  // namespace vp::wire
