// Consistent-hash routing of observer ids to service backends
// (DESIGN.md §14).
//
// The ingest tier routes every frame for one observer to the same
// DetectionService backend — a session lives in exactly one service, so
// routing must be a pure function of the observer id and the backend
// topology. A consistent ring (each backend owns many pseudo-random
// virtual points; a key routes to the first point at or after its hash)
// gives that function two properties a modulus cannot: adding a backend
// moves only the keys that land on its points, and failover is a pure
// point-relabelling — the standby inherits the failed backend's ring
// points, so every routed observer follows without rehashing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vp::wire {

class HashRing {
 public:
  // `backends` is the number of routable slots; `vnodes_per_backend`
  // virtual points each. Both must be >= 1. The ring layout depends
  // only on these two numbers, never on insertion order.
  HashRing(std::size_t backends, std::size_t vnodes_per_backend);

  // The backend slot owning `key`'s ring position.
  std::size_t route(std::uint64_t key) const;

  std::size_t backends() const { return backends_; }

 private:
  struct Point {
    std::uint64_t position;
    std::uint32_t backend;
  };

  std::size_t backends_;
  std::vector<Point> points_;  // sorted by position
};

}  // namespace vp::wire
