// Socket-facing ingestion front-end (DESIGN.md §14).
//
// The IngestServer is the boundary between untrusted transports and the
// DetectionService fleet: it owns the accepted connections, runs one
// VPWB FrameDecoder per connection, and routes every valid frame to a
// backend chosen by consistent-hashing the observer id (wire/hash_ring).
// Everything a peer can do wrong is bounded and counted:
//
//   * Decode rejects (corruption, replays, junk) are shed before they
//     can touch any session state — the decoder is the validation front.
//   * Each connection's receive buffer and decoded-frame queue are
//     bounded; frames decoded while the queue is full are shed as
//     backpressure, deterministically (the queue drains only at drain()
//     points, so shedding depends on data and poll cadence, not timing).
//   * The frame conservation law
//       wire.frames_received = frames_ingested + frames_shed_invalid
//                            + frames_shed_backpressure + frames_buffered
//     holds at every poll()/drain() boundary; the HealthMonitor checks
//     it continuously (obs/telemetry.cpp).
//
// Threading: single-driver, like DetectionService — one thread calls
// add_connection/poll/drain/replace_backend. Transports are internally
// safe, so remote peers (bench sender threads, the vp_ingest_client
// process) write concurrently; all decode and routing work happens on
// the driver thread.
//
// Delivery order is deterministic: drain() walks connections in accept
// order and each connection's frames FIFO, then pumps the backends in
// index order. Combined with the service's own deterministic pump, a
// byte-identical set of per-connection streams produces bit-identical
// rounds regardless of how arrivals interleaved with poll() calls.
//
// Failover (DESIGN.md §14): drain to quiescence, checkpoint the failing
// backend (VPSC), restore into a standby, then replace_backend(index,
// standby) — the ring's points are keyed by slot index, so the standby
// inherits the exact hash range and every in-flight observer follows.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "service/service.h"
#include "wire/frame.h"
#include "wire/hash_ring.h"
#include "wire/transport.h"

namespace vp::wire {

struct IngestServerConfig {
  // Per-connection decoder buffer: the most undecodable bytes a peer
  // can park in memory.
  std::size_t recv_buffer_bytes = 64 * 1024;
  // Read granularity per connection per poll().
  std::size_t read_chunk_bytes = 16 * 1024;
  // Per-connection decoded-frame queue cap; frames decoded past it are
  // shed as backpressure.
  std::size_t max_frames_buffered = 4096;
  // Ring points per backend slot.
  std::size_t vnodes_per_backend = 64;
};

class IngestServer {
 public:
  // Plain counters mirroring the wire.* metrics, always maintained
  // (registry copies are gated on obs::enabled()).
  struct Stats {
    std::uint64_t bytes_received = 0;
    std::uint64_t frames_received = 0;   // decoded frames + rejects
    std::uint64_t frames_ingested = 0;   // delivered to a backend
    std::uint64_t frames_shed_invalid = 0;
    std::uint64_t frames_shed_backpressure = 0;
    // frames_shed_invalid by decoder reject reason:
    std::uint64_t reject_bad_magic = 0;
    std::uint64_t reject_bad_version = 0;
    std::uint64_t reject_bad_checksum = 0;
    std::uint64_t reject_bad_type = 0;
    std::uint64_t reject_replayed_seq = 0;
    std::uint64_t beacons_ingested = 0;   // of frames_ingested
    std::uint64_t controls_ingested = 0;  // of frames_ingested
    std::uint64_t connections_opened = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t truncated_tails = 0;  // connections that died mid-frame
    std::uint64_t failovers = 0;
    std::uint64_t polls = 0;
    std::uint64_t drains = 0;
  };

  // `backends` are routable slots 0..n-1; all must be non-null and
  // outlive the server (or be replaced first). The ring is fixed at
  // construction — failover swaps a slot's service, never the topology.
  IngestServer(IngestServerConfig config,
               std::vector<service::DetectionService*> backends);

  // Adopts an accepted transport; returns its connection id (accept
  // order, from 1).
  std::uint64_t add_connection(std::unique_ptr<Connection> connection);

  // Reads every connection (bounded per connection), decodes, queues
  // valid frames and sheds the rest. Returns bytes read this call.
  std::size_t poll();

  // Delivers every queued frame to its backend (connection-major FIFO),
  // pumps the backends, then applies deferred session closes and reaps
  // dead connections. Returns frames delivered this call.
  std::size_t drain();

  // Points slot `index` at `standby`. Call only at quiescence (after
  // drain(); VP_REQUIRE enforces an empty frame queue) so no buffered
  // frame straddles the swap.
  void replace_backend(std::size_t index, service::DetectionService* standby);

  // Stream-time watermark: the minimum, over open connections that have
  // delivered at least one frame, of the newest delivered stream time —
  // every open connection has delivered all its data before this time.
  // Once every connection has closed, the watermark is the maximum over
  // their final times. Feed it to fusion::FusionEngine::advance.
  double watermark() const;

  const Stats& stats() const { return stats_; }
  std::size_t connections_active() const;
  std::size_t frames_buffered() const { return frames_buffered_; }
  const HashRing& ring() const { return ring_; }
  service::DetectionService& backend_for(std::uint64_t observer) const;

 private:
  struct Conn {
    std::uint64_t id = 0;
    std::unique_ptr<Connection> transport;
    FrameDecoder decoder;
    std::deque<Frame> frames;
    double delivered_time_s = 0.0;  // newest delivered stream time
    bool delivered_any = false;
    bool peer_closed = false;  // receive() returned -1
    bool reaped = false;
  };

  void decode_available(Conn& conn);
  void deliver(Conn& conn, const Frame& frame);
  void publish_gauges();

  IngestServerConfig config_;
  std::vector<service::DetectionService*> backends_;
  HashRing ring_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<std::uint8_t> scratch_;  // poll() read buffer
  // Sessions whose CLOSE frame was delivered this drain; closed after
  // the pump so their already-queued rounds run instead of being shed.
  std::vector<std::uint64_t> pending_closes_;
  std::size_t frames_buffered_ = 0;
  // Last-published contributions to the shared wire.* gauges (deltas,
  // same protocol as DetectionService::publish_session_gauges).
  std::size_t published_buffered_ = 0;
  std::size_t published_active_ = 0;
  double closed_watermark_s_ = 0.0;  // max final time of closed conns
  std::uint64_t next_conn_id_ = 1;
  Stats stats_;
};

}  // namespace vp::wire
