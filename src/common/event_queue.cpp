#include "common/event_queue.h"

#include <utility>

#include "common/error.h"

namespace vp {

void EventQueue::schedule(double time_s, Callback fn) {
  VP_REQUIRE(time_s >= now_);
  events_.push({time_s, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(double delay_s, Callback fn) {
  VP_REQUIRE(delay_s >= 0.0);
  schedule(now_ + delay_s, std::move(fn));
}

void EventQueue::run_until(double end_time_s) {
  VP_REQUIRE(end_time_s >= now_);
  while (!events_.empty() && events_.top().time <= end_time_s) {
    // Move the callback out before popping so it may schedule new events.
    Event event = events_.top();
    events_.pop();
    now_ = event.time;
    ++executed_;
    event.fn();
  }
  now_ = end_time_s;
}

void EventQueue::run_all() {
  while (!events_.empty()) {
    Event event = events_.top();
    events_.pop();
    now_ = event.time;
    ++executed_;
    event.fn();
  }
}

}  // namespace vp
