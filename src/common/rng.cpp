#include "common/rng.h"

#include "common/error.h"

namespace vp {

std::uint64_t hash64(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  // Asymmetric in (a, b) so that swapped arguments yield distinct streams.
  std::uint64_t z = a * 0x9E3779B97F4A7C15ULL + b + 0x2545F4914F6CDD1DULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng Rng::fork(std::string_view name) const {
  return Rng(mix64(seed_, hash64(name)));
}

double Rng::uniform(double lo, double hi) {
  VP_REQUIRE(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  VP_REQUIRE(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double sigma) {
  VP_REQUIRE(sigma >= 0.0);
  if (sigma == 0.0) return mean;
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

double Rng::exponential(double rate) {
  VP_REQUIRE(rate > 0.0);
  return std::exponential_distribution<double>(rate)(engine_);
}

bool Rng::chance(double p) {
  VP_REQUIRE(p >= 0.0 && p <= 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::gamma(double shape, double scale) {
  VP_REQUIRE(shape > 0.0 && scale > 0.0);
  return std::gamma_distribution<double>(shape, scale)(engine_);
}

}  // namespace vp
