// A small reusable thread pool with a parallel_for primitive.
//
// The comparison phase is embarrassingly parallel — a full confirmation
// round over 80 neighbours is 3160 independent FastDTW calls — so all the
// engine needs is a fork/join loop over an index range. The pool keeps its
// workers parked between calls (spawning threads per detection round would
// cost more than many of the rounds themselves).
//
// Determinism contract: parallel_for runs fn(worker, index) exactly once
// for every index in [0, count). Indices are claimed dynamically, so no
// ordering between them may be assumed; callers must write results into
// disjoint, pre-sized slots. The `worker` argument is < the requested
// parallelism and stable for the duration of one fn call, which lets
// callers keep one scratch object (e.g. a ts::DtwWorkspace) per worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vp {

class ThreadPool {
 public:
  // A pool with `workers` total workers, the calling thread included, so
  // workers - 1 background threads are spawned. workers == 0 or 1 spawns
  // none (parallel_for then degenerates to a serial loop).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total workers available to one parallel_for call (background threads
  // plus the calling thread).
  std::size_t workers() const { return threads_.size() + 1; }

  // Utilisation counters, accumulated since construction (or the last
  // reset_stats). They cover pool-dispatched jobs only — the serial fast
  // paths never touch the pool, and nested calls run inline on their
  // worker — and cost two clock reads per participant per job, which is
  // noise next to any real job. Read by the observability RunReport.
  struct Stats {
    std::size_t workers = 0;          // pool width (calling thread included)
    std::uint64_t jobs = 0;           // parallel_for calls dispatched here
    std::uint64_t tasks = 0;          // indices executed by pool jobs
    std::uint64_t submit_wait_ns = 0; // submitters blocked on a busy pool
    std::vector<std::uint64_t> worker_busy_ns;  // per participant id
  };
  Stats stats() const;
  void reset_stats();

  // Runs fn(worker, index) for every index in [0, count) on up to
  // max_workers workers; the calling thread participates as worker 0.
  // Blocks until every index has run. The first exception thrown by fn is
  // rethrown here (remaining indices are abandoned). Safe to call from
  // inside a worker: the nested call runs serially on that worker.
  void parallel_for(std::size_t count, std::size_t max_workers,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  // Process-wide pool, created on first use. Sized to the hardware but
  // never below 8 workers, so the parallel machinery is exercised (and the
  // determinism contract testable) even on single-core machines.
  static ThreadPool& shared();

 private:
  void worker_loop();
  void run_tasks(std::size_t worker_id);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  bool stop_ = false;
  bool busy_ = false;          // a parallel_for call is in flight
  std::uint64_t generation_ = 0;
  std::size_t active_ = 0;     // participating background workers not yet done

  // Current job (valid while busy_).
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::size_t max_workers_ = 0;
  std::atomic<std::size_t> next_{0};        // next index to claim
  std::atomic<std::size_t> worker_ids_{0};  // next participant id to hand out
  std::exception_ptr error_;

  // Utilisation counters (see Stats). Relaxed atomics: they feed reports,
  // not synchronisation.
  std::atomic<std::uint64_t> stat_jobs_{0};
  std::atomic<std::uint64_t> stat_tasks_{0};
  std::atomic<std::uint64_t> stat_submit_wait_ns_{0};
  std::vector<std::atomic<std::uint64_t>> stat_worker_busy_ns_;
};

// Number of hardware threads, at least 1.
std::size_t hardware_threads();

// Convenience front-end used by the library: runs fn(worker, index) over
// [0, count) with the requested number of threads. threads <= 1 (or
// count <= 1) runs serially on the calling thread without touching the
// pool; threads == 0 means "all hardware threads". Results must not depend
// on the thread count — see the determinism contract above.
void parallel_for(std::size_t threads, std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace vp
