#include "common/cli.h"

#include <algorithm>
#include <stdexcept>

#include "common/error.h"

namespace vp {

CliArgs::CliArgs(int argc, const char* const* argv) {
  VP_REQUIRE(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw InvalidArgument("expected --option, got: " + token);
    }
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // --name value, unless the next token is another option (then a switch).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("--" + name + " expects a number, got: " +
                          it->second);
  }
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("--" + name + " expects an integer, got: " +
                          it->second);
  }
}

std::uint64_t CliArgs::get_seed(const std::string& name,
                                std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("--" + name + " expects an unsigned integer, got: " +
                          it->second);
  }
}

std::string CliArgs::program_name() const {
  const auto slash = program_.find_last_of('/');
  return slash == std::string::npos ? program_ : program_.substr(slash + 1);
}

RunFlags parse_run_flags(const CliArgs& args, std::size_t default_threads) {
  RunFlags flags;
  const std::int64_t threads =
      args.get_int("threads", static_cast<std::int64_t>(default_threads));
  if (threads < 0) throw InvalidArgument("--threads must be >= 0");
  flags.threads = static_cast<std::size_t>(threads);
  flags.metrics_out = args.get("metrics-out", "");
  flags.trace_out = args.get("trace-out", "");
  flags.prune = args.get_bool("prune", false);
  flags.simd = args.get_bool("simd", true);
  flags.fixed_lb = args.get_bool("fixedlb", false);
  flags.cond = args.get_bool("cond", false);
  flags.telemetry_out = args.get("telemetry-out", "");
  const std::int64_t every = args.get_int("telemetry-every", 1);
  if (every < 0) throw InvalidArgument("--telemetry-every must be >= 0");
  flags.telemetry_every_rounds = static_cast<std::uint64_t>(every);
  flags.telemetry_every_s = args.get_double("telemetry-every-s", 0.0);
  if (flags.telemetry_every_s < 0.0) {
    throw InvalidArgument("--telemetry-every-s must be >= 0");
  }
  flags.openmetrics_out = args.get("openmetrics-out", "");
  return flags;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "true" || v == "on" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "off" || v == "0" || v == "no") return false;
  throw InvalidArgument("--" + name + " expects a boolean, got: " + it->second);
}

}  // namespace vp
