// Error handling primitives for the voiceprint library.
//
// The library signals contract violations and unrecoverable failures with
// exceptions derived from vp::Error. Hot simulation paths use VP_ASSERT,
// which is compiled out in release builds; API boundaries use VP_REQUIRE,
// which is always active.
#pragma once

#include <stdexcept>
#include <string>

namespace vp {

// Base class of all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// A caller violated a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

// An input value is structurally valid but semantically out of range.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

// Internal invariant broken; indicates a bug in the library itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* cond, const char* file,
                                            int line) {
  throw PreconditionError(std::string("precondition failed: ") + cond + " at " +
                          file + ":" + std::to_string(line));
}
[[noreturn]] inline void throw_internal(const char* cond, const char* file,
                                        int line) {
  throw InternalError(std::string("invariant broken: ") + cond + " at " + file +
                      ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace vp

// Always-on precondition check for public API boundaries.
#define VP_REQUIRE(cond)                                           \
  do {                                                             \
    if (!(cond)) ::vp::detail::throw_precondition(#cond, __FILE__, __LINE__); \
  } while (false)

// Always-on internal invariant check.
#define VP_ENSURE(cond)                                        \
  do {                                                         \
    if (!(cond)) ::vp::detail::throw_internal(#cond, __FILE__, __LINE__); \
  } while (false)

// Debug-only check for hot paths.
#ifdef NDEBUG
#define VP_ASSERT(cond) ((void)0)
#else
#define VP_ASSERT(cond) VP_ENSURE(cond)
#endif
