// Identifiers shared across the stack.
//
// A *node* is a physical radio (one per vehicle, Assumption 2). An
// *identity* is what beacons claim: normal nodes broadcast their single
// valid identity; a malicious node broadcasts its own plus several
// fabricated Sybil identities (all through the same radio).
#pragma once

#include <cstdint>

namespace vp {

using NodeId = std::uint32_t;
using IdentityId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;
inline constexpr IdentityId kInvalidIdentity = 0xFFFFFFFFu;

}  // namespace vp
