// Descriptive statistics used across the library: streaming accumulators,
// histograms and the normal distribution functions the CPVSAD baseline's
// statistical test needs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vp {

// Single-pass accumulator for mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }

  // Mean of the observed values; requires count() > 0.
  double mean() const;

  // Unbiased sample variance; requires count() > 1.
  double variance() const;

  // Square root of variance(); requires count() > 1.
  double stddev() const;

  // Population variance (divides by n); requires count() > 0.
  double population_variance() const;

  double min() const;
  double max() const;

  // Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Batch helpers over a span of samples.
double mean(std::span<const double> xs);
double variance(std::span<const double> xs);           // unbiased, needs >= 2
double population_variance(std::span<const double> xs);  // needs >= 1
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

// p-th percentile (0 <= p <= 100) by linear interpolation of the sorted
// sample; requires a non-empty span.
double percentile(std::span<const double> xs, double p);

// Standard normal probability density function.
double normal_pdf(double z);

// Standard normal cumulative distribution function.
double normal_cdf(double z);

// Inverse of the standard normal CDF (Acklam's rational approximation,
// |error| < 1.15e-9); requires 0 < p < 1.
double normal_quantile(double p);

// Fixed-width histogram over [lo, hi); samples outside are clamped into the
// first/last bin. Used to reproduce the Fig. 5 RSSI distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }

  // Centre of the given bin.
  double bin_center(std::size_t bin) const;

  // Fraction of all samples in the given bin (0 if the histogram is empty).
  double fraction(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace vp
