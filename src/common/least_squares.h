// Small dense least-squares solvers. Used by the radio module to fit the
// dual-slope empirical path-loss model (Table IV) and by the ML module.
#pragma once

#include <span>
#include <vector>

namespace vp {

// Result of a simple linear regression y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // coefficient of determination
  double residual_stddev = 0.0;  // std-dev of (y - fit), the sigma of Eq. 1
};

// Ordinary least squares for y = slope*x + intercept. Requires at least two
// distinct x values.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

// Ordinary least squares for y = slope*x + c with a *fixed* intercept c
// (fits only the slope). Requires a non-empty sample with nonzero sum of x².
double slope_through(std::span<const double> xs, std::span<const double> ys,
                     double fixed_intercept);

// Solves the normal equations (AᵀA)x = Aᵀb for a small column count using
// Gaussian elimination with partial pivoting. `a` is row-major with
// rows.size() == b.size() rows of `cols` entries each. Throws
// InvalidArgument if the system is singular.
std::vector<double> solve_normal_equations(std::span<const double> a,
                                           std::size_t cols,
                                           std::span<const double> b);

}  // namespace vp
