#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace vp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  VP_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  VP_REQUIRE(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << " | ";
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };

  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace vp
