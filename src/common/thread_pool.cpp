#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace vp {

namespace {
std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}
}  // namespace

namespace {
// True while the current thread is executing tasks for some parallel_for.
// A nested parallel_for must not submit to the pool (the outer call holds
// it busy), so it runs serially on the nesting worker instead.
thread_local bool tl_in_worker = false;
}  // namespace

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t workers)
    : stat_worker_busy_ns_(workers <= 1 ? 1 : workers) {
  const std::size_t background = workers <= 1 ? 0 : workers - 1;
  threads_.reserve(background);
  for (std::size_t i = 0; i < background; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max<std::size_t>(hardware_threads(), 8));
  return pool;
}

void ThreadPool::run_tasks(std::size_t worker_id) {
  const bool was_in_worker = tl_in_worker;
  tl_in_worker = true;
  const auto busy_since = std::chrono::steady_clock::now();
  std::uint64_t ran = 0;
  try {
    for (std::size_t i = next_.fetch_add(1); i < count_;
         i = next_.fetch_add(1)) {
      (*fn_)(worker_id, i);
      ++ran;
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    next_.store(count_);  // abandon the remaining indices
  }
  stat_tasks_.fetch_add(ran, std::memory_order_relaxed);
  stat_worker_busy_ns_[worker_id].fetch_add(elapsed_ns(busy_since),
                                            std::memory_order_relaxed);
  tl_in_worker = was_in_worker;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    job_ready_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    // Claim a participant slot under the lock: the claim must be atomic
    // with observing this generation, or a late wake-up could claim into
    // the next job's id space.
    const std::size_t id = worker_ids_.fetch_add(1);
    const bool participate = id < max_workers_;
    lock.unlock();
    if (participate) run_tasks(id);
    lock.lock();
    if (participate && --active_ == 0) job_done_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t count, std::size_t max_workers,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || max_workers <= 1 || threads_.empty() || tl_in_worker) {
    const bool was_in_worker = tl_in_worker;
    tl_in_worker = true;
    try {
      for (std::size_t i = 0; i < count; ++i) fn(0, i);
    } catch (...) {
      tl_in_worker = was_in_worker;
      throw;
    }
    tl_in_worker = was_in_worker;
    return;
  }

  const auto submit_at = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  job_done_.wait(lock, [&] { return !busy_; });
  stat_submit_wait_ns_.fetch_add(elapsed_ns(submit_at),
                                 std::memory_order_relaxed);
  stat_jobs_.fetch_add(1, std::memory_order_relaxed);
  busy_ = true;
  fn_ = &fn;
  count_ = count;
  max_workers_ = std::min(max_workers, workers());
  next_.store(0);
  worker_ids_.store(1);  // the calling thread is worker 0
  error_ = nullptr;
  // Every background worker eventually wakes and claims an id for this
  // generation (or a later one); exactly this many get id < max_workers_.
  active_ = std::min(threads_.size(), max_workers_ - 1);
  ++generation_;
  lock.unlock();
  job_ready_.notify_all();

  run_tasks(0);

  lock.lock();
  job_done_.wait(lock, [&] { return active_ == 0; });
  busy_ = false;
  const std::exception_ptr error = error_;
  error_ = nullptr;
  lock.unlock();
  job_done_.notify_all();  // wake submitters queued on !busy_
  if (error) std::rethrow_exception(error);
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.workers = workers();
  s.jobs = stat_jobs_.load(std::memory_order_relaxed);
  s.tasks = stat_tasks_.load(std::memory_order_relaxed);
  s.submit_wait_ns = stat_submit_wait_ns_.load(std::memory_order_relaxed);
  s.worker_busy_ns.reserve(stat_worker_busy_ns_.size());
  for (const auto& w : stat_worker_busy_ns_) {
    s.worker_busy_ns.push_back(w.load(std::memory_order_relaxed));
  }
  return s;
}

void ThreadPool::reset_stats() {
  stat_jobs_.store(0, std::memory_order_relaxed);
  stat_tasks_.store(0, std::memory_order_relaxed);
  stat_submit_wait_ns_.store(0, std::memory_order_relaxed);
  for (auto& w : stat_worker_busy_ns_) w.store(0, std::memory_order_relaxed);
}

void parallel_for(std::size_t threads, std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (threads == 0) threads = hardware_threads();
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  ThreadPool::shared().parallel_for(count, threads, fn);
}

}  // namespace vp
