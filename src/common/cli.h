// Tiny command-line flag parser shared by the bench and example binaries.
// Supports --name=value and --name value forms plus boolean switches
// (--flag, --flag=on/off).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vp {

class CliArgs {
 public:
  // Parses argv; throws InvalidArgument on malformed input (an option
  // without a leading --, or an unknown-looking bare token).
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  // Typed getters with defaults. Throw InvalidArgument if the stored text
  // cannot be converted.
  std::string get(const std::string& name, const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_seed(const std::string& name, std::uint64_t fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  // Name of the binary (argv[0]).
  const std::string& program() const { return program_; }

  // program() without its directory part, for report labelling.
  std::string program_name() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

// Flags every experiment binary shares (parsed in one place so the
// spellings and semantics cannot drift between binaries):
//   --threads N       worker threads for the pairwise sweep and window
//                     cutting; 0 = all hardware threads; results are
//                     bit-identical for every value.
//   --metrics-out P   write a voiceprint.run_report/v1 JSON document to P
//                     when the binary exits.
//   --trace-out P     stream JSONL span events to P during the run.
//   --prune           route detection through the lower-bound cascade
//                     (core::compare_series_pruned); verdicts are
//                     guaranteed identical to the exact sweep, pruned
//                     pairs report bounds instead of exact distances.
//   --simd on|off     let the cascade's band sweeps use the vectorised
//                     wavefront kernel (default on; bit-identical either
//                     way, only speed changes). Meaningless without
//                     --prune.
//   --fixedlb         add the int16 Q4.12 integer-DTW tier to the
//                     cascade (certified lower bound between envelope
//                     and float kernel; verdicts identical, no effect
//                     without --prune).
//   --cond            run the §15 fixed-point conditioning front
//                     (Hampel/MAD + adaptive EMA) on every ingested
//                     beacon; the cond.* counters and their conservation
//                     law go live.
//   --telemetry-out P append voiceprint.telemetry/v1 JSONL frames to P
//                     on deterministic stream-clock boundaries.
//   --telemetry-every N
//                     emit a frame every N confirmation rounds
//                     (default 1; 0 disables the round cadence).
//   --telemetry-every-s T
//                     emit a frame every T seconds of *stream* clock
//                     (default 0 = off; never wall clock).
//   --openmetrics-out P
//                     write the final registry snapshot to P in
//                     Prometheus/OpenMetrics text exposition.
// Empty paths mean "off" (the run stays uninstrumented).
struct RunFlags {
  std::size_t threads = 1;
  std::string metrics_out;
  std::string trace_out;
  bool prune = false;
  bool simd = true;
  bool fixed_lb = false;
  bool cond = false;
  std::string telemetry_out;
  std::uint64_t telemetry_every_rounds = 1;
  double telemetry_every_s = 0.0;
  std::string openmetrics_out;
};

RunFlags parse_run_flags(const CliArgs& args, std::size_t default_threads = 1);

}  // namespace vp
