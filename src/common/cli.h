// Tiny command-line flag parser shared by the bench and example binaries.
// Supports --name=value and --name value forms plus boolean switches
// (--flag, --flag=on/off).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vp {

class CliArgs {
 public:
  // Parses argv; throws InvalidArgument on malformed input (an option
  // without a leading --, or an unknown-looking bare token).
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  // Typed getters with defaults. Throw InvalidArgument if the stored text
  // cannot be converted.
  std::string get(const std::string& name, const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_seed(const std::string& name, std::uint64_t fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  // Name of the binary (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace vp
