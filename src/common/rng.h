// Deterministic random number generation.
//
// Every stochastic component of the simulator draws from an Rng that is
// seeded from a single experiment-level seed plus a component name, so runs
// are reproducible and components are statistically independent: changing
// how one module consumes randomness does not perturb another module's
// stream.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace vp {

// A seeded pseudo-random stream (mt19937_64 under the hood).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  // Derives an independent stream for a named sub-component. The same
  // (seed, name) pair always yields the same stream.
  Rng fork(std::string_view name) const;

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  // Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  // Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  // Gamma with the given shape and scale (both > 0); used by the Nakagami
  // fading model.
  double gamma(double shape, double scale);

  // Underlying engine, for use with standard-library distributions.
  std::mt19937_64& engine() { return engine_; }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::mt19937_64 engine_;
};

// Stable 64-bit hash of a string (FNV-1a); used to derive fork seeds.
std::uint64_t hash64(std::string_view text);

// Mixes two 64-bit values into one well-distributed value (splitmix64 final).
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

}  // namespace vp
