// Bounds-checked little-endian binary encoding, used by the checkpoint
// codecs (stream/checkpoint.h, service/checkpoint.h).
//
// Doubles travel as their IEEE-754 bit patterns (std::bit_cast through
// uint64), so a value written and read back is the *same bits* — the
// checkpoint restore-parity invariant (DESIGN.md §10) needs exact
// doubles, not "close enough" text round-trips. The reader never throws
// on malformed input: every get_* reports truncation through its return
// value, so a corrupted checkpoint is a diagnosable error, not UB.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace vp {

// FNV-1a over raw bytes; the checkpoint codecs append this as a trailer
// so bit rot and truncation are detected before any field is trusted.
inline std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 1099511628211ULL;
  }
  return hash;
}

// Appends fixed-width little-endian fields to a byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void put_u8(std::uint8_t v) { out_.push_back(v); }

  void put_u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      out_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }

  void put_u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      out_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }

  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

// Reads the fields back; every getter returns false (leaving the output
// untouched) once the input is exhausted.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool get_u8(std::uint8_t& v) {
    if (cursor_ + 1 > bytes_.size()) return false;
    v = bytes_[cursor_++];
    return true;
  }

  bool get_u32(std::uint32_t& v) {
    if (cursor_ + 4 > bytes_.size()) return false;
    v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= static_cast<std::uint32_t>(bytes_[cursor_++]) << shift;
    }
    return true;
  }

  bool get_u64(std::uint64_t& v) {
    if (cursor_ + 8 > bytes_.size()) return false;
    v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      v |= static_cast<std::uint64_t>(bytes_[cursor_++]) << shift;
    }
    return true;
  }

  bool get_i64(std::int64_t& v) {
    std::uint64_t raw;
    if (!get_u64(raw)) return false;
    v = static_cast<std::int64_t>(raw);
    return true;
  }

  bool get_f64(double& v) {
    std::uint64_t raw;
    if (!get_u64(raw)) return false;
    v = std::bit_cast<double>(raw);
    return true;
  }

  // Advances past n bytes (e.g. an embedded blob parsed separately).
  bool skip(std::size_t n) {
    if (n > remaining()) return false;
    cursor_ += n;
    return true;
  }

  std::size_t cursor() const { return cursor_; }
  std::size_t remaining() const { return bytes_.size() - cursor_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace vp
