// Plain-text table rendering for the benchmark harnesses. Every bench binary
// prints the rows/series the paper's tables and figures report; this class
// keeps the output aligned and stable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 4);

  // Renders the table with a header rule, e.g.
  //   density | DR     | FPR
  //   --------+--------+------
  //   10      | 0.9463 | 0.021
  void print(std::ostream& os) const;

  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vp
