// Minimal CSV writer so bench binaries can dump raw series for external
// plotting alongside their printed tables.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace vp {

class CsvWriter {
 public:
  // Opens (truncates) the file and writes the header row. Throws vp::Error
  // if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  // Writes one row; the cell count must match the header.
  void write_row(std::span<const std::string> cells);
  void write_row(std::span<const double> values);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::size_t columns_ = 0;
  std::ofstream out_;
};

}  // namespace vp
