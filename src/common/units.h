// Physical units and conversions used throughout the simulator.
//
// Powers travel through the code as dBm (logarithmic) because that is what
// both the paper and DSRC hardware report; linear milliwatts are used only
// where signals must be summed (interference at a receiver).
#pragma once

#include <cmath>

namespace vp::units {

inline constexpr double kSpeedOfLightMps = 299'792'458.0;
inline constexpr double kPi = 3.14159265358979323846;

// DSRC control-channel centre frequency (CH 178), per Table III.
inline constexpr double kDsrcFrequencyHz = 5.89e9;

// Wavelength of the DSRC carrier in metres.
inline constexpr double kDsrcWavelengthM = kSpeedOfLightMps / kDsrcFrequencyHz;

// IWCU OBU4.2 receive sensitivity, per Table II.
inline constexpr double kRxSensitivityDbm = -95.0;

// dBm <-> milliwatt conversions.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

// dB ratio <-> linear ratio.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
inline double linear_to_db(double ratio) { return 10.0 * std::log10(ratio); }

// km/h <-> m/s.
inline constexpr double kmh_to_mps(double kmh) { return kmh / 3.6; }
inline constexpr double mps_to_kmh(double mps) { return mps * 3.6; }

// Vehicles-per-km <-> vehicles-per-metre.
inline constexpr double per_km_to_per_m(double per_km) { return per_km / 1000.0; }
inline constexpr double per_m_to_per_km(double per_m) { return per_m * 1000.0; }

}  // namespace vp::units
