#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vp {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  VP_REQUIRE(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  VP_REQUIRE(n_ > 1);
  // Welford's m2 can drift a few ulps below zero on (near-)constant
  // input; clamping keeps sqrt() callers (stddev, the Eq. 7 Z-score)
  // defined instead of NaN.
  return std::max(m2_, 0.0) / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::population_variance() const {
  VP_REQUIRE(n_ > 0);
  return std::max(m2_, 0.0) / static_cast<double>(n_);
}

double RunningStats::min() const {
  VP_REQUIRE(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  VP_REQUIRE(n_ > 0);
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  const double total = n + m;
  m2_ += other.m2_ + delta * delta * n * m / total;
  mean_ += delta * m / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double variance(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

double population_variance(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.population_variance();
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  VP_REQUIRE(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  VP_REQUIRE(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  VP_REQUIRE(!xs.empty());
  VP_REQUIRE(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double normal_pdf(double z) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  VP_REQUIRE(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  VP_REQUIRE(hi > lo);
  VP_REQUIRE(bins > 0);
}

void Histogram::add(double x) {
  double idx = (x - lo_) / width_;
  auto bin = idx <= 0.0 ? 0
             : idx >= static_cast<double>(counts_.size())
                 ? counts_.size() - 1
                 : static_cast<std::size_t>(idx);
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  VP_REQUIRE(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  VP_REQUIRE(bin < counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::fraction(std::size_t bin) const {
  VP_REQUIRE(bin < counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

}  // namespace vp
