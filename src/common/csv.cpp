#include "common/csv.h"

#include <sstream>

#include "common/error.h"

namespace vp {

namespace {
std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : path_(path), columns_(columns.size()), out_(path) {
  VP_REQUIRE(!columns.empty());
  if (!out_) throw Error("cannot open CSV file for writing: " + path);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::span<const std::string> cells) {
  VP_REQUIRE(cells.size() == columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::span<const double> values) {
  VP_REQUIRE(values.size() == columns_);
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ',';
    os << values[i];
  }
  out_ << os.str() << '\n';
}

}  // namespace vp
