// Discrete-event simulation core: a time-ordered queue of callbacks.
// Events at equal times fire in scheduling order (a stable tiebreak), which
// keeps runs bit-reproducible for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace vp {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `fn` at absolute simulation time `time_s`; must not be in the
  // past relative to now().
  void schedule(double time_s, Callback fn);

  // Schedules `fn` `delay_s` seconds from now (delay >= 0).
  void schedule_in(double delay_s, Callback fn);

  // Runs events in time order until the queue is empty or the next event is
  // after `end_time_s`; leaves now() at end_time_s.
  void run_until(double end_time_s);

  // Runs everything (use only when the event set is finite).
  void run_all();

  double now() const { return now_; }
  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace vp
