#include "common/least_squares.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace vp {

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  VP_REQUIRE(xs.size() == ys.size());
  VP_REQUIRE(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  VP_REQUIRE(denom != 0.0);  // needs at least two distinct x values

  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  double ss_res = 0.0;
  const double y_mean = sy / n;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += r * r;
    ss_tot += (ys[i] - y_mean) * (ys[i] - y_mean);
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  fit.residual_stddev =
      xs.size() > 2 ? std::sqrt(ss_res / (n - 2.0)) : std::sqrt(ss_res / n);
  return fit;
}

double slope_through(std::span<const double> xs, std::span<const double> ys,
                     double fixed_intercept) {
  VP_REQUIRE(xs.size() == ys.size());
  VP_REQUIRE(!xs.empty());
  double sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += xs[i] * xs[i];
    sxy += xs[i] * (ys[i] - fixed_intercept);
  }
  VP_REQUIRE(sxx != 0.0);
  return sxy / sxx;
}

std::vector<double> solve_normal_equations(std::span<const double> a,
                                           std::size_t cols,
                                           std::span<const double> b) {
  VP_REQUIRE(cols > 0);
  VP_REQUIRE(a.size() % cols == 0);
  const std::size_t rows = a.size() / cols;
  VP_REQUIRE(rows == b.size());
  VP_REQUIRE(rows >= cols);

  // Build AtA (cols x cols) and Atb (cols).
  std::vector<double> ata(cols * cols, 0.0);
  std::vector<double> atb(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < cols; ++i) {
      const double ari = a[r * cols + i];
      atb[i] += ari * b[r];
      for (std::size_t j = 0; j < cols; ++j) {
        ata[i * cols + j] += ari * a[r * cols + j];
      }
    }
  }

  // Gaussian elimination with partial pivoting on [AtA | Atb].
  for (std::size_t col = 0; col < cols; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < cols; ++r) {
      if (std::fabs(ata[r * cols + col]) > std::fabs(ata[pivot * cols + col]))
        pivot = r;
    }
    if (std::fabs(ata[pivot * cols + col]) < 1e-12) {
      throw InvalidArgument("least squares: singular normal equations");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < cols; ++j)
        std::swap(ata[col * cols + j], ata[pivot * cols + j]);
      std::swap(atb[col], atb[pivot]);
    }
    for (std::size_t r = col + 1; r < cols; ++r) {
      const double f = ata[r * cols + col] / ata[col * cols + col];
      for (std::size_t j = col; j < cols; ++j)
        ata[r * cols + j] -= f * ata[col * cols + j];
      atb[r] -= f * atb[col];
    }
  }
  std::vector<double> x(cols, 0.0);
  for (std::size_t ri = cols; ri-- > 0;) {
    double acc = atb[ri];
    for (std::size_t j = ri + 1; j < cols; ++j) acc -= ata[ri * cols + j] * x[j];
    x[ri] = acc / ata[ri * cols + ri];
  }
  return x;
}

}  // namespace vp
