// Deterministic fault injection for beacon streams (DESIGN.md §10).
//
// The serving stack's robustness claims — bounded shedding, exact
// conservation laws, crash-safe restore — are only credible if something
// actually attacks them. FaultInjector wraps any beacon source (simulator
// traces, field-test replay, synthetic load) and applies configurable
// fault classes on the way through:
//
//   * drop            — i.i.d. beacon loss
//   * burst loss      — correlated outages (a burst drops `burst_length`
//                       consecutive beacons, modelling a deep fade or a
//                       jammed channel)
//   * duplicate       — the same beacon delivered twice (DSRC CCH/SCH
//                       double reception, or a replaying attacker)
//   * reorder         — a beacon held back and released up to
//                       `reorder_max_displacement` beacons late
//   * RSSI corruption — additive spikes, quantisation to a coarse step,
//                       non-finite values (NaN/±Inf) a broken driver
//                       might report, and stuck-at episodes (the RSSI
//                       readback register latches: every beacon reports
//                       the frozen value — or a saturation rail — for a
//                       burst of deliveries)
//   * timestamp skew  — constant offset + linear drift of a bad clock,
//                       and outright regressions (time running backwards)
//   * identity flood  — fabricated identities inserted alongside real
//                       traffic (the Sybil attacker's own tool, aimed at
//                       the identity cap)
//
// Everything is driven by per-class Rng streams forked from one seed, so
// a fault sequence is exactly reproducible from (seed, config) — the
// chaos bench and the determinism tests depend on that. Every applied
// fault is counted in FaultStats (and the fault.* metrics when
// observability is enabled; the reorder-buffer occupancy is mirrored in
// the `fault.held` gauge), with the conservation law
//   offered + duplicated + flood_injected
//     == emitted + dropped + burst_dropped + held
// holding after every offer()/flush() — the HealthMonitor checks exactly
// this on every telemetry frame.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace vp::fault {

// One beacon in flight: what a source hands the serving stack.
struct Beacon {
  IdentityId id = 0;
  double time_s = 0.0;
  double rssi_dbm = 0.0;
};

struct FaultConfig {
  std::uint64_t seed = 1;

  // --- Loss ------------------------------------------------------------
  double drop_probability = 0.0;         // i.i.d. per beacon
  double burst_start_probability = 0.0;  // per beacon, outside a burst
  std::size_t burst_length = 10;         // beacons dropped per burst

  // --- Delivery --------------------------------------------------------
  double duplicate_probability = 0.0;  // emit the beacon twice
  double reorder_probability = 0.0;    // hold the beacon back …
  std::size_t reorder_max_displacement = 4;  // … up to this many beacons

  // --- RSSI corruption -------------------------------------------------
  double rssi_spike_probability = 0.0;  // add ±rssi_spike_db
  double rssi_spike_db = 25.0;
  double rssi_quantize_step_db = 0.0;   // >0: round RSSI to this step
  double rssi_non_finite_probability = 0.0;  // NaN / +Inf / -Inf
  // Stuck-at/saturation: with this per-beacon probability the receiver's
  // RSSI readback latches for the next `rssi_stuck_length` deliveries
  // (all identities — it is one physical radio). An episode freezes at
  // the arming beacon's own RSSI, or — with rssi_stuck_rail_probability —
  // rails at rssi_stuck_rail_dbm (a saturated front end). The rail
  // default sits inside the validation front's plausible range on
  // purpose: only §15 conditioning can catch it.
  double rssi_stuck_probability = 0.0;
  std::size_t rssi_stuck_length = 8;
  double rssi_stuck_rail_probability = 0.5;
  double rssi_stuck_rail_dbm = -30.0;

  // --- Timestamp corruption --------------------------------------------
  double time_skew_s = 0.0;        // constant clock offset
  double time_drift_per_s = 0.0;   // linear drift: t' = t(1+drift)+skew
  double time_regression_probability = 0.0;  // send time backwards …
  double time_regression_s = 5.0;            // … by this much

  // --- Adversarial identity flood --------------------------------------
  double flood_probability = 0.0;  // per source beacon: inject a fake
  IdentityId flood_id_base = 1u << 20;  // fabricated ids start here
};

// Counters for every fault applied. `held` beacons sit in the reorder
// buffer awaiting release; flush() drains them.
struct FaultStats {
  std::uint64_t offered = 0;   // source beacons seen
  std::uint64_t emitted = 0;   // beacons handed downstream
  std::uint64_t dropped = 0;
  std::uint64_t burst_dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;  // beacons that were held and re-released
  std::uint64_t rssi_spiked = 0;
  std::uint64_t rssi_quantized = 0;
  std::uint64_t rssi_non_finite = 0;
  std::uint64_t rssi_stuck = 0;  // beacons reporting a latched/railed RSSI
  std::uint64_t time_skewed = 0;     // nonzero skew/drift applied
  std::uint64_t time_regressed = 0;
  std::uint64_t flood_injected = 0;
  std::uint64_t held = 0;  // currently in the reorder buffer

  std::uint64_t conserved_in() const {
    return offered + duplicated + flood_injected;
  }
  std::uint64_t conserved_out() const {
    return emitted + dropped + burst_dropped + held;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  // Feeds one source beacon; faulted output (zero or more beacons, in
  // delivery order) is appended to `out`. Deterministic: the same
  // (seed, config, beacon sequence) produces the same output sequence.
  void offer(const Beacon& beacon, std::vector<Beacon>& out);

  // Releases every beacon still held by the reorder buffer, in hold
  // order. Call at end of trace.
  void flush(std::vector<Beacon>& out);

  // Convenience: runs a whole trace through offer() + flush().
  std::vector<Beacon> apply(std::span<const Beacon> trace);

  const FaultStats& stats() const { return stats_; }
  const FaultConfig& config() const { return config_; }

 private:
  struct Held {
    Beacon beacon;
    std::size_t release_after = 0;  // emit when this many beacons pass
  };

  void corrupt_and_emit(Beacon beacon, std::vector<Beacon>& out);
  void emit(const Beacon& beacon, std::vector<Beacon>& out);

  FaultConfig config_;
  FaultStats stats_;
  // Independent per-class streams: tuning one fault class never perturbs
  // another class's sequence (same property the simulator's Rng::fork
  // gives its noise models).
  Rng drop_rng_;
  Rng burst_rng_;
  Rng duplicate_rng_;
  Rng reorder_rng_;
  Rng rssi_rng_;
  Rng stuck_rng_;
  Rng time_rng_;
  Rng flood_rng_;

  std::size_t burst_remaining_ = 0;
  std::size_t stuck_remaining_ = 0;
  double stuck_value_dbm_ = 0.0;
  std::vector<Held> held_;
  std::uint32_t flood_sequence_ = 0;
};

}  // namespace vp::fault
