// BENCH_chaos.json schema ("voiceprint.chaos_bench/v2"): the
// bench/chaos_detection harness writes one document summarising each
// fault-class × intensity run over a highway trace — what the injector
// did (per-class fault counts), what the serving stack did with it
// (ingested/shed by reason, conditioned, rounds), how many kill/restore
// cycles the run survived, and how far its rounds diverged from the
// clean baseline.
//
// v2 (§15) adds the stuck-at fault class (rssi_stuck), the conditioning
// counters (shed_conditioned, cond_offered/passed/clamped/rejected), and
// the `cond_gates` array: per fault class, the divergence of a
// conditioning-OFF run (vs the unconditioned clean baseline) against the
// divergence of the SAME faulted stream with conditioning ON (vs the
// conditioned clean baseline). The validator requires every gate to show
// a strict improvement — conditioning must measurably blunt the fault,
// not just not hurt.
//
// Like the other bench schemas, build and validate live together so the
// emitted document and the check (tools/check_run_report --chaos-bench,
// the smoke script, and the unit tests) cannot drift apart. The
// validator enforces the three conservation laws end to end:
//   source + duplicated + flood == emitted + dropped + burst_dropped
//   offered == ingested + Σ shed_* (all three overload classes, the four
//                                   validation reasons, session cap, and
//                                   conditioning rejects)
//   cond_offered == cond_passed + cond_clamped + cond_rejected
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace vp::fault {

// One chaos run's results.
struct ChaosRunResult {
  std::string label;        // e.g. "rssi_non_finite_high"
  std::string fault_class;  // "drop", "burst", ..., "all", "none"
  double intensity = 0.0;   // the class's driving probability/magnitude
  std::uint64_t kill_restore_cycles = 0;

  // Injector side (FaultStats).
  std::uint64_t source_beacons = 0;  // clean-trace beacons offered
  std::uint64_t emitted = 0;         // beacons the injector delivered
  std::uint64_t dropped = 0;
  std::uint64_t burst_dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t rssi_spiked = 0;
  std::uint64_t rssi_quantized = 0;
  std::uint64_t rssi_non_finite = 0;
  std::uint64_t rssi_stuck = 0;
  std::uint64_t time_skewed = 0;
  std::uint64_t time_regressed = 0;
  std::uint64_t flood_injected = 0;

  // Serving-stack side.
  std::uint64_t offered = 0;  // beacons offered to the engine/service
  std::uint64_t ingested = 0;
  std::uint64_t shed_rate_limited = 0;
  std::uint64_t shed_identity_cap = 0;
  std::uint64_t shed_out_of_order = 0;
  std::uint64_t shed_session_cap = 0;  // service runs only
  std::uint64_t shed_invalid_rssi_non_finite = 0;
  std::uint64_t shed_invalid_rssi_out_of_range = 0;
  std::uint64_t shed_invalid_time_non_finite = 0;
  std::uint64_t shed_invalid_time_negative = 0;
  // §15 conditioning front (all zero when the run had it off).
  std::uint64_t shed_conditioned = 0;
  std::uint64_t cond_offered = 0;
  std::uint64_t cond_passed = 0;
  std::uint64_t cond_clamped = 0;
  std::uint64_t cond_rejected = 0;
  std::uint64_t rounds = 0;

  // Fraction of rounds whose suspect set differs from the clean
  // baseline's round at the same instant, and the run's configured
  // ceiling for it. A faulted run may legitimately diverge (it saw
  // different beacons); the ceiling bounds how much.
  double round_divergence = 0.0;
  double max_divergence = 1.0;
};

// One conditioning divergence gate (§15): the same faulted stream run
// twice, conditioning OFF and ON, each measured against its own clean
// baseline. The validator requires divergence_on < divergence_off
// strictly — with divergence_off > 0, so the gate can never pass
// vacuously on a fault class the run failed to make damaging.
struct CondGateResult {
  std::string fault_class;  // "rssi_spike", "rssi_quantize", "rssi_stuck"
  double intensity = 0.0;
  double divergence_off = 0.0;  // conditioning OFF vs unconditioned base
  double divergence_on = 0.0;   // conditioning ON vs conditioned base
};

// Builds the voiceprint.chaos_bench/v2 document.
obs::json::Value build_chaos_bench_report(
    const std::string& binary, std::uint64_t seed,
    const std::vector<ChaosRunResult>& runs,
    const std::vector<CondGateResult>& cond_gates);

// True when `report` conforms to voiceprint.chaos_bench/v2 (including
// all three conservation laws per run and the strict conditioning
// improvement on every gate). On failure, `error` (if non-null)
// receives a one-line description.
bool validate_chaos_bench(const obs::json::Value& report, std::string* error);

}  // namespace vp::fault
