#include "fault/report.h"

#include <utility>

#include "common/thread_pool.h"

namespace vp::fault {

namespace {

using obs::json::Array;
using obs::json::Object;
using obs::json::Value;

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool require_number(const Value& object, const char* key,
                    const std::string& where, std::string* error) {
  const Value* v = object.find(key);
  if (v == nullptr || !v->is_number()) {
    return fail(error, where + ": missing or non-numeric \"" + key + "\"");
  }
  return true;
}

double num(const Value& object, const char* key) {
  return object.find(key)->as_number();
}

constexpr const char* kInjectorKeys[] = {
    "source_beacons", "emitted",        "dropped",        "burst_dropped",
    "duplicated",     "reordered",      "rssi_spiked",    "rssi_quantized",
    "rssi_non_finite", "rssi_stuck",    "time_skewed",    "time_regressed",
    "flood_injected",
};

constexpr const char* kServingKeys[] = {
    "offered",
    "ingested",
    "shed_rate_limited",
    "shed_identity_cap",
    "shed_out_of_order",
    "shed_session_cap",
    "shed_invalid_rssi_non_finite",
    "shed_invalid_rssi_out_of_range",
    "shed_invalid_time_non_finite",
    "shed_invalid_time_negative",
    "shed_conditioned",
    "cond_offered",
    "cond_passed",
    "cond_clamped",
    "cond_rejected",
    "rounds",
};

}  // namespace

Value build_chaos_bench_report(const std::string& binary, std::uint64_t seed,
                               const std::vector<ChaosRunResult>& runs,
                               const std::vector<CondGateResult>& cond_gates) {
  Object doc;
  doc.emplace("schema", Value("voiceprint.chaos_bench/v2"));
  doc.emplace("binary", Value(binary));
  doc.emplace("hardware_threads", Value(hardware_threads()));
  doc.emplace("seed", Value(seed));
  Array rows;
  for (const ChaosRunResult& r : runs) {
    Object row;
    row.emplace("label", Value(r.label));
    row.emplace("fault_class", Value(r.fault_class));
    row.emplace("intensity", Value(r.intensity));
    row.emplace("kill_restore_cycles", Value(r.kill_restore_cycles));
    row.emplace("source_beacons", Value(r.source_beacons));
    row.emplace("emitted", Value(r.emitted));
    row.emplace("dropped", Value(r.dropped));
    row.emplace("burst_dropped", Value(r.burst_dropped));
    row.emplace("duplicated", Value(r.duplicated));
    row.emplace("reordered", Value(r.reordered));
    row.emplace("rssi_spiked", Value(r.rssi_spiked));
    row.emplace("rssi_quantized", Value(r.rssi_quantized));
    row.emplace("rssi_non_finite", Value(r.rssi_non_finite));
    row.emplace("rssi_stuck", Value(r.rssi_stuck));
    row.emplace("time_skewed", Value(r.time_skewed));
    row.emplace("time_regressed", Value(r.time_regressed));
    row.emplace("flood_injected", Value(r.flood_injected));
    row.emplace("offered", Value(r.offered));
    row.emplace("ingested", Value(r.ingested));
    row.emplace("shed_rate_limited", Value(r.shed_rate_limited));
    row.emplace("shed_identity_cap", Value(r.shed_identity_cap));
    row.emplace("shed_out_of_order", Value(r.shed_out_of_order));
    row.emplace("shed_session_cap", Value(r.shed_session_cap));
    row.emplace("shed_invalid_rssi_non_finite",
                Value(r.shed_invalid_rssi_non_finite));
    row.emplace("shed_invalid_rssi_out_of_range",
                Value(r.shed_invalid_rssi_out_of_range));
    row.emplace("shed_invalid_time_non_finite",
                Value(r.shed_invalid_time_non_finite));
    row.emplace("shed_invalid_time_negative",
                Value(r.shed_invalid_time_negative));
    row.emplace("shed_conditioned", Value(r.shed_conditioned));
    row.emplace("cond_offered", Value(r.cond_offered));
    row.emplace("cond_passed", Value(r.cond_passed));
    row.emplace("cond_clamped", Value(r.cond_clamped));
    row.emplace("cond_rejected", Value(r.cond_rejected));
    row.emplace("rounds", Value(r.rounds));
    row.emplace("round_divergence", Value(r.round_divergence));
    row.emplace("max_divergence", Value(r.max_divergence));
    rows.push_back(Value(std::move(row)));
  }
  doc.emplace("runs", Value(std::move(rows)));
  Array gates;
  for (const CondGateResult& g : cond_gates) {
    Object gate;
    gate.emplace("fault_class", Value(g.fault_class));
    gate.emplace("intensity", Value(g.intensity));
    gate.emplace("divergence_off", Value(g.divergence_off));
    gate.emplace("divergence_on", Value(g.divergence_on));
    gates.push_back(Value(std::move(gate)));
  }
  doc.emplace("cond_gates", Value(std::move(gates)));
  return Value(std::move(doc));
}

bool validate_chaos_bench(const Value& report, std::string* error) {
  if (!report.is_object()) return fail(error, "report is not an object");
  const Value* schema = report.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "voiceprint.chaos_bench/v2") {
    return fail(error, "schema is not \"voiceprint.chaos_bench/v2\"");
  }
  const Value* binary = report.find("binary");
  if (binary == nullptr || !binary->is_string()) {
    return fail(error, "missing or non-string \"binary\"");
  }
  if (!require_number(report, "hardware_threads", "report", error) ||
      !require_number(report, "seed", "report", error)) {
    return false;
  }
  const Value* runs = report.find("runs");
  if (runs == nullptr || !runs->is_array()) {
    return fail(error, "missing or non-array \"runs\"");
  }
  if (runs->as_array().empty()) return fail(error, "\"runs\" is empty");
  std::size_t index = 0;
  for (const Value& row : runs->as_array()) {
    const std::string where = "runs[" + std::to_string(index++) + "]";
    if (!row.is_object()) return fail(error, where + " is not an object");
    for (const char* key : {"label", "fault_class"}) {
      const Value* v = row.find(key);
      if (v == nullptr || !v->is_string()) {
        return fail(error, where + ": missing or non-string \"" + key + "\"");
      }
    }
    for (const char* key :
         {"intensity", "kill_restore_cycles", "round_divergence",
          "max_divergence"}) {
      if (!require_number(row, key, where, error)) return false;
    }
    for (const char* key : kInjectorKeys) {
      if (!require_number(row, key, where, error)) return false;
    }
    for (const char* key : kServingKeys) {
      if (!require_number(row, key, where, error)) return false;
    }
    // Injector conservation: every source, duplicated and fabricated
    // beacon is accounted for as delivered or dropped (the bench flushes
    // the reorder buffer, so nothing stays held).
    if (num(row, "source_beacons") + num(row, "duplicated") +
            num(row, "flood_injected") !=
        num(row, "emitted") + num(row, "dropped") +
            num(row, "burst_dropped")) {
      return fail(error,
                  where + ": injector conservation violated (source + "
                          "duplicated + flood != emitted + dropped + burst)");
    }
    // Serving-stack conservation: offered = ingested + every shed class.
    const double shed_sum =
        num(row, "shed_rate_limited") + num(row, "shed_identity_cap") +
        num(row, "shed_out_of_order") + num(row, "shed_session_cap") +
        num(row, "shed_invalid_rssi_non_finite") +
        num(row, "shed_invalid_rssi_out_of_range") +
        num(row, "shed_invalid_time_non_finite") +
        num(row, "shed_invalid_time_negative") +
        num(row, "shed_conditioned");
    if (num(row, "offered") != num(row, "ingested") + shed_sum) {
      return fail(error, where + ": offered != ingested + Σ shed");
    }
    // Conditioning conservation: every sample the §15 front saw left it
    // through exactly one verdict (trivially 0 == 0 on OFF runs).
    if (num(row, "cond_offered") != num(row, "cond_passed") +
                                        num(row, "cond_clamped") +
                                        num(row, "cond_rejected")) {
      return fail(error, where + ": cond_offered != passed + clamped + "
                                 "rejected");
    }
    const double divergence = num(row, "round_divergence");
    const double ceiling = num(row, "max_divergence");
    if (divergence < 0.0 || divergence > 1.0) {
      return fail(error, where + ": round_divergence outside [0, 1]");
    }
    if (ceiling < 0.0 || ceiling > 1.0) {
      return fail(error, where + ": max_divergence outside [0, 1]");
    }
    if (divergence > ceiling) {
      return fail(error, where + ": round_divergence exceeds max_divergence");
    }
  }
  // Conditioning gates (§15): every gated fault class must show a strict
  // divergence improvement with conditioning ON, and the OFF arm must
  // actually diverge — a gate over a harmless fault proves nothing.
  const Value* gates = report.find("cond_gates");
  if (gates == nullptr || !gates->is_array()) {
    return fail(error, "missing or non-array \"cond_gates\"");
  }
  index = 0;
  for (const Value& gate : gates->as_array()) {
    const std::string where = "cond_gates[" + std::to_string(index++) + "]";
    if (!gate.is_object()) return fail(error, where + " is not an object");
    const Value* cls = gate.find("fault_class");
    if (cls == nullptr || !cls->is_string()) {
      return fail(error, where + ": missing or non-string \"fault_class\"");
    }
    for (const char* key : {"intensity", "divergence_off", "divergence_on"}) {
      if (!require_number(gate, key, where, error)) return false;
    }
    const double off = num(gate, "divergence_off");
    const double on = num(gate, "divergence_on");
    if (off < 0.0 || off > 1.0 || on < 0.0 || on > 1.0) {
      return fail(error, where + ": divergence outside [0, 1]");
    }
    if (!(off > 0.0)) {
      return fail(error, where + " (" + cls->as_string() +
                             "): divergence_off is zero — the fault did not "
                             "bite, the gate is vacuous");
    }
    if (!(on < off)) {
      return fail(error, where + " (" + cls->as_string() +
                             "): conditioning did not strictly reduce "
                             "divergence");
    }
  }
  return true;
}

}  // namespace vp::fault
