#include "fault/injector.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/error.h"
#include "obs/runtime.h"

namespace vp::fault {

namespace {

// Registry instruments, resolved once; updates gated on obs::enabled()
// like every other subsystem's sinks.
struct Sinks {
  obs::Counter* offered;
  obs::Counter* emitted;
  obs::Counter* dropped;
  obs::Counter* burst_dropped;
  obs::Counter* duplicated;
  obs::Counter* reordered;
  obs::Counter* rssi_spiked;
  obs::Counter* rssi_quantized;
  obs::Counter* rssi_non_finite;
  obs::Counter* rssi_stuck;
  obs::Counter* time_skewed;
  obs::Counter* time_regressed;
  obs::Counter* flood_injected;
  obs::Gauge* held;
};

const Sinks& sinks() {
  static const Sinks s = [] {
    obs::MetricsRegistry& r = obs::registry();
    return Sinks{
        .offered = &r.counter("fault.offered"),
        .emitted = &r.counter("fault.emitted"),
        .dropped = &r.counter("fault.dropped"),
        .burst_dropped = &r.counter("fault.burst_dropped"),
        .duplicated = &r.counter("fault.duplicated"),
        .reordered = &r.counter("fault.reordered"),
        .rssi_spiked = &r.counter("fault.rssi_spiked"),
        .rssi_quantized = &r.counter("fault.rssi_quantized"),
        .rssi_non_finite = &r.counter("fault.rssi_non_finite"),
        .rssi_stuck = &r.counter("fault.rssi_stuck"),
        .time_skewed = &r.counter("fault.time_skewed"),
        .time_regressed = &r.counter("fault.time_regressed"),
        .flood_injected = &r.counter("fault.flood_injected"),
        .held = &r.gauge("fault.held"),
    };
  }();
  return s;
}

bool valid_probability(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)),
      drop_rng_(Rng(config_.seed).fork("fault.drop")),
      burst_rng_(Rng(config_.seed).fork("fault.burst")),
      duplicate_rng_(Rng(config_.seed).fork("fault.duplicate")),
      reorder_rng_(Rng(config_.seed).fork("fault.reorder")),
      rssi_rng_(Rng(config_.seed).fork("fault.rssi")),
      stuck_rng_(Rng(config_.seed).fork("fault.stuck")),
      time_rng_(Rng(config_.seed).fork("fault.time")),
      flood_rng_(Rng(config_.seed).fork("fault.flood")) {
  VP_REQUIRE(valid_probability(config_.drop_probability));
  VP_REQUIRE(valid_probability(config_.burst_start_probability));
  VP_REQUIRE(valid_probability(config_.duplicate_probability));
  VP_REQUIRE(valid_probability(config_.reorder_probability));
  VP_REQUIRE(valid_probability(config_.rssi_spike_probability));
  VP_REQUIRE(valid_probability(config_.rssi_non_finite_probability));
  VP_REQUIRE(valid_probability(config_.rssi_stuck_probability));
  VP_REQUIRE(valid_probability(config_.rssi_stuck_rail_probability));
  VP_REQUIRE(config_.rssi_stuck_length >= 1);
  VP_REQUIRE(std::isfinite(config_.rssi_stuck_rail_dbm));
  VP_REQUIRE(valid_probability(config_.time_regression_probability));
  VP_REQUIRE(valid_probability(config_.flood_probability));
  VP_REQUIRE(config_.burst_length >= 1);
  VP_REQUIRE(config_.reorder_max_displacement >= 1);
  VP_REQUIRE(config_.rssi_quantize_step_db >= 0.0);
}

void FaultInjector::emit(const Beacon& beacon, std::vector<Beacon>& out) {
  out.push_back(beacon);
  ++stats_.emitted;
  if (obs::enabled()) sinks().emitted->add(1);
}

void FaultInjector::corrupt_and_emit(Beacon beacon, std::vector<Beacon>& out) {
  const bool instrumented = obs::enabled();

  // Clock faults first — they model the sender/receiver clock, which the
  // RSSI path never sees.
  if (config_.time_skew_s != 0.0 || config_.time_drift_per_s != 0.0) {
    beacon.time_s =
        beacon.time_s * (1.0 + config_.time_drift_per_s) + config_.time_skew_s;
    ++stats_.time_skewed;
    if (instrumented) sinks().time_skewed->add(1);
  }
  if (config_.time_regression_probability > 0.0 &&
      time_rng_.chance(config_.time_regression_probability)) {
    beacon.time_s -= config_.time_regression_s;
    ++stats_.time_regressed;
    if (instrumented) sinks().time_regressed->add(1);
  }

  // RSSI faults: spike, then non-finite (which overrides), then
  // quantisation (a no-op on non-finite values).
  const double clean_rssi_dbm = beacon.rssi_dbm;
  if (config_.rssi_spike_probability > 0.0 &&
      rssi_rng_.chance(config_.rssi_spike_probability)) {
    const double sign = rssi_rng_.chance(0.5) ? 1.0 : -1.0;
    beacon.rssi_dbm += sign * config_.rssi_spike_db;
    ++stats_.rssi_spiked;
    if (instrumented) sinks().rssi_spiked->add(1);
  }
  if (config_.rssi_non_finite_probability > 0.0 &&
      rssi_rng_.chance(config_.rssi_non_finite_probability)) {
    switch (rssi_rng_.uniform_int(0, 2)) {
      case 0:
        beacon.rssi_dbm = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        beacon.rssi_dbm = std::numeric_limits<double>::infinity();
        break;
      default:
        beacon.rssi_dbm = -std::numeric_limits<double>::infinity();
        break;
    }
    ++stats_.rssi_non_finite;
    if (instrumented) sinks().rssi_non_finite->add(1);
  } else if (config_.rssi_quantize_step_db > 0.0) {
    beacon.rssi_dbm = std::round(beacon.rssi_dbm /
                                 config_.rssi_quantize_step_db) *
                      config_.rssi_quantize_step_db;
    ++stats_.rssi_quantized;
    if (instrumented) sinks().rssi_quantized->add(1);
  }

  // Stuck-at/saturation last: the latched readback register replaces
  // whatever the channel delivered, wholesale (a stuck beacon's spike or
  // quantisation is masked but still counted — the fault happened, the
  // latch just hid it). Drawing from a dedicated Rng fork AFTER the
  // other classes keeps their fault sequences bit-identical whether or
  // not stuck-at is enabled.
  if (stuck_remaining_ == 0 && config_.rssi_stuck_probability > 0.0 &&
      stuck_rng_.chance(config_.rssi_stuck_probability)) {
    stuck_remaining_ = config_.rssi_stuck_length;
    stuck_value_dbm_ =
        stuck_rng_.chance(config_.rssi_stuck_rail_probability)
            ? config_.rssi_stuck_rail_dbm
            : clean_rssi_dbm;  // freeze at the arming beacon's reading
  }
  if (stuck_remaining_ > 0) {
    --stuck_remaining_;
    beacon.rssi_dbm = stuck_value_dbm_;
    ++stats_.rssi_stuck;
    if (instrumented) sinks().rssi_stuck->add(1);
  }

  // Delivery faults: hold for reorder, or emit now (possibly twice).
  if (config_.reorder_probability > 0.0 &&
      reorder_rng_.chance(config_.reorder_probability)) {
    const auto displacement = static_cast<std::size_t>(
        reorder_rng_.uniform_int(
            1, static_cast<std::int64_t>(config_.reorder_max_displacement)));
    held_.push_back(Held{beacon, displacement});
    ++stats_.held;
    if (instrumented) sinks().held->set(static_cast<double>(stats_.held));
    return;
  }
  emit(beacon, out);
  if (config_.duplicate_probability > 0.0 &&
      duplicate_rng_.chance(config_.duplicate_probability)) {
    ++stats_.duplicated;
    if (instrumented) sinks().duplicated->add(1);
    emit(beacon, out);
  }
}

void FaultInjector::offer(const Beacon& beacon, std::vector<Beacon>& out) {
  const bool instrumented = obs::enabled();
  ++stats_.offered;
  if (instrumented) sinks().offered->add(1);

  // Adversarial flood: a fabricated identity rides alongside the real
  // traffic, at the same instant — exactly what a Sybil attacker's radio
  // looks like to the ingest path.
  if (config_.flood_probability > 0.0 &&
      flood_rng_.chance(config_.flood_probability)) {
    Beacon fake;
    fake.id = config_.flood_id_base + flood_sequence_++;
    fake.time_s = beacon.time_s;
    fake.rssi_dbm = flood_rng_.uniform(-95.0, -45.0);
    ++stats_.flood_injected;
    if (instrumented) sinks().flood_injected->add(1);
    emit(fake, out);
  }

  // Correlated loss: a burst swallows this beacon whole (no corruption,
  // no reorder bookkeeping — the radio heard nothing).
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    ++stats_.burst_dropped;
    if (instrumented) sinks().burst_dropped->add(1);
  } else if (config_.burst_start_probability > 0.0 &&
             burst_rng_.chance(config_.burst_start_probability)) {
    burst_remaining_ = config_.burst_length - 1;  // this beacon is the first
    ++stats_.burst_dropped;
    if (instrumented) sinks().burst_dropped->add(1);
  } else if (config_.drop_probability > 0.0 &&
             drop_rng_.chance(config_.drop_probability)) {
    ++stats_.dropped;
    if (instrumented) sinks().dropped->add(1);
  } else {
    corrupt_and_emit(beacon, out);
  }

  // Tick the reorder buffer: every held beacon moved one source beacon
  // closer to release; due ones come out in hold order.
  if (!held_.empty()) {
    std::size_t kept = 0;
    for (Held& h : held_) {
      if (h.release_after <= 1) {
        ++stats_.reordered;
        if (instrumented) sinks().reordered->add(1);
        --stats_.held;
        emit(h.beacon, out);
      } else {
        --h.release_after;
        held_[kept++] = std::move(h);
      }
    }
    held_.resize(kept);
    if (instrumented) sinks().held->set(static_cast<double>(stats_.held));
  }
}

void FaultInjector::flush(std::vector<Beacon>& out) {
  const bool instrumented = obs::enabled();
  for (Held& h : held_) {
    ++stats_.reordered;
    if (instrumented) sinks().reordered->add(1);
    --stats_.held;
    emit(h.beacon, out);
  }
  held_.clear();
  if (instrumented) sinks().held->set(0.0);
}

std::vector<Beacon> FaultInjector::apply(std::span<const Beacon> trace) {
  std::vector<Beacon> out;
  out.reserve(trace.size());
  for (const Beacon& beacon : trace) offer(beacon, out);
  flush(out);
  return out;
}

}  // namespace vp::fault
