// Local traffic-density estimation (Eq. 9): den = N / (2 · Dist_max), with
// N the nodes heard during the density-estimation period and Dist_max the
// maximum transmission range. In the first detection period all heard
// identities count (a fresh observer cannot yet tell the legitimate ones
// apart); afterwards, previously detected Sybil identities can be excluded.
#pragma once

#include <cstddef>
#include <set>
#include <vector>

#include "common/ids.h"

namespace vp::core {

// Density in vehicles/km given a heard-identity count and Dist_max in
// metres (Eq. 9). Requires max_transmission_range_m > 0.
double estimate_density_per_km(std::size_t heard_count,
                               double max_transmission_range_m);

// Refined estimate: heard identities minus those already confirmed as
// Sybil in earlier periods (the paper's "first estimation" caveat).
double estimate_density_per_km(const std::vector<IdentityId>& heard,
                               const std::set<IdentityId>& known_sybils,
                               double max_transmission_range_m);

}  // namespace vp::core
