// Multi-period confirmation — the mitigation Section VI recommends after
// analysing its single field-test false positive ("We suggest making a
// final determination of the Sybil node after several detection periods so
// as to reduce the false positive rate").
//
// A sliding window of the last `window` per-period verdicts is kept per
// (observer, identity); an identity is confirmed Sybil once it was flagged
// in at least `required` of them.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <vector>

#include "common/ids.h"

namespace vp::core {

class ConfirmationFilter {
 public:
  // Requires 1 <= required <= window.
  ConfirmationFilter(std::size_t required, std::size_t window);

  // Feeds one detection period's raw suspects for one observer; returns the
  // identities confirmed so far. `heard` is every identity the observer
  // could have flagged this period (unheard identities carry no verdict).
  std::vector<IdentityId> update(NodeId observer,
                                 const std::vector<IdentityId>& heard,
                                 const std::vector<IdentityId>& flagged);

  // Confirmed identities for one observer under the current history.
  std::vector<IdentityId> confirmed(NodeId observer) const;

  void reset();

  std::size_t required() const { return required_; }
  std::size_t window() const { return window_; }

 private:
  struct History {
    std::deque<bool> verdicts;  // newest at the back, length <= window
    std::size_t positives = 0;
  };

  std::size_t required_;
  std::size_t window_;
  std::map<NodeId, std::map<IdentityId, History>> state_;
};

}  // namespace vp::core
