#include "core/comparison.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "obs/runtime.h"
#include "obs/timer.h"
#include "timeseries/dtw.h"
#include "timeseries/fixed.h"
#include "timeseries/lower_bound.h"
#include "timeseries/lp_distance.h"
#include "timeseries/normalize.h"

namespace vp::core {

namespace {

// Per-worker scratch for the pairwise sweep: one DTW workspace plus the
// alignment buffers, so the hot loop reuses its allocations across pairs.
struct PairScratch {
  ts::DtwWorkspace workspace;
  ts::DtwResult result;
  ts::FixedDtwScratch fixed;
  std::vector<double> va, vb;
};

// Histogram sinks for the per-pair sub-phases, resolved from the registry
// once per sweep (registry lookup takes a mutex; the pair loop must not).
// Null when observability is disabled — compare_pair then reads no clocks.
struct PairSinks {
  obs::Histogram* cut_align_ns = nullptr;  // support cut + sample alignment
  obs::Histogram* zscore_ns = nullptr;     // Eq. 7 enhanced Z-score
  obs::Histogram* dtw_ns = nullptr;        // the DTW/Euclidean distance call
};

PairSinks resolve_pair_sinks() {
  PairSinks sinks;
  if (!obs::enabled()) return sinks;
  obs::MetricsRegistry& registry = obs::registry();
  sinks.cut_align_ns = &registry.histogram("comparison.pair_cut_align_ns");
  sinks.zscore_ns = &registry.histogram("comparison.pair_zscore_ns");
  sinks.dtw_ns = &registry.histogram("comparison.pair_dtw_ns");
  return sinks;
}

// Span-based core of match_samples: the cascade aligns on subspans of the
// original series (no slice_time copies), the public Series overload
// forwards here — one implementation, identical doubles either way.
void match_samples_spans(std::span<const double> ta,
                         std::span<const double> va,
                         std::span<const double> tb,
                         std::span<const double> vb, double max_gap_s,
                         std::vector<double>& out_a,
                         std::vector<double>& out_b) {
  out_a.clear();
  out_b.clear();
  // Same-beacon-rate fast path: when both sides sit on the identical
  // strictly-increasing grid, the nearest-neighbour walk below pairs
  // sample i with sample i (each |tb[j+1] - ta[i]| is positive while
  // |tb[i] - ta[i]| is zero, so j never advances past i, and the zero gap
  // always passes max_gap_s) — the output is the two value arrays
  // verbatim. Strictness matters: duplicate timestamps make the walk
  // consume ahead, so they take the general loop.
  if (ta.size() == tb.size() && !ta.empty() && max_gap_s >= 0.0) {
    bool same_grid = true;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      if (ta[i] != tb[i] || (i > 0 && !(ta[i] > ta[i - 1]))) {
        same_grid = false;
        break;
      }
    }
    if (same_grid) {
      out_a.assign(va.begin(), va.end());
      out_b.assign(vb.begin(), vb.end());
      return;
    }
  }
  std::size_t j = 0;
  for (std::size_t i = 0; i < ta.size() && j < tb.size(); ++i) {
    const double t = ta[i];
    while (j + 1 < tb.size() &&
           std::fabs(tb[j + 1] - t) <= std::fabs(tb[j] - t)) {
      ++j;
    }
    if (std::fabs(tb[j] - t) > max_gap_s) continue;
    // Leave b[j] to the next a-sample when that one is strictly closer:
    // otherwise a marginal earlier match consumes the partner and the final
    // a-sample exits unmatched even though it had the better claim.
    if (i + 1 < ta.size() &&
        std::fabs(tb[j] - ta[i + 1]) < std::fabs(tb[j] - t)) {
      continue;
    }
    out_a.push_back(va[i]);
    out_b.push_back(vb[j]);
    ++j;  // consume the matched sample
  }
}

double pair_distance(const std::vector<double>& x, const std::vector<double>& y,
                     const ComparisonOptions& options, PairScratch& scratch) {
  switch (options.distance) {
    case DistanceKind::kFastDtw: {
      ts::fast_dtw(x, y,
                   {.radius = options.fastdtw_radius,
                    .cost = options.cost,
                    .band = options.dtw_band},
                   scratch.workspace, scratch.result);
      return options.length_normalize
                 ? scratch.result.distance /
                       static_cast<double>(scratch.result.path.size())
                 : scratch.result.distance;
    }
    case DistanceKind::kExactDtw: {
      if (options.dtw_band > 0) {
        ts::dtw_banded(x, y, options.dtw_band, options.cost, scratch.workspace,
                       scratch.result);
      } else {
        ts::dtw(x, y, options.cost, scratch.workspace, scratch.result);
      }
      return options.length_normalize
                 ? scratch.result.distance /
                       static_cast<double>(scratch.result.path.size())
                 : scratch.result.distance;
    }
    case DistanceKind::kEuclidean: {
      // Euclidean needs equal lengths; packet loss makes them unequal, so
      // resample the longer one down to the shorter (Section IV-B explains
      // why the paper rejects this).
      const auto n = std::min(x.size(), y.size());
      double d;
      if (x.size() == y.size()) {
        d = ts::euclidean_distance(x, y);
      } else {
        const ts::Series xs = ts::Series::uniform(0.0, 1.0, x).resample(n);
        const ts::Series ys = ts::Series::uniform(0.0, 1.0, y).resample(n);
        d = ts::euclidean_distance(xs.values(), ys.values());
      }
      return options.length_normalize ? d / std::sqrt(static_cast<double>(n))
                                      : d;
    }
  }
  throw InternalError("unknown distance kind");
}

// True if the series carries enough shape to be compared (see
// ComparisonOptions::min_series_stddev_db).
bool has_usable_shape(std::span<const double> values,
                      const ComparisonOptions& options) {
  if (options.min_series_stddev_db <= 0.0) return true;
  RunningStats stats;
  std::size_t at_floor = 0;
  for (double v : values) {
    stats.add(v);
    if (v <= options.sensitivity_floor_dbm + 0.25) ++at_floor;
  }
  if (std::sqrt(stats.population_variance()) < options.min_series_stddev_db) {
    return false;
  }
  return static_cast<double>(at_floor) <=
         options.max_floor_fraction * static_cast<double>(values.size());
}

// One (a, b) comparison: common-support restriction, alignment, Eq. 7 and
// the DTW distance, using only `scratch`'s buffers for the hot allocations.
PairDistance compare_pair(const NamedSeries& ea, const NamedSeries& eb,
                          const ComparisonOptions& options,
                          PairScratch& scratch, const PairSinks& sinks) {
  const ts::Series& sa = ea.second;
  const ts::Series& sb = eb.second;
  PairDistance p;
  p.a = ea.first;
  p.b = eb.first;

  obs::ScopedTimer cut_timer(sinks.cut_align_ns);
  // Restrict to the common time support.
  const double lo = std::max(sa.time(0), sb.time(0));
  const double hi = std::min(sa.time(sa.size() - 1), sb.time(sb.size() - 1));
  if (hi - lo < options.min_overlap_s) {
    p.comparable = false;
    return p;
  }
  // Half-open slice: nudge the upper bound to include the endpoint.
  const ts::Series cut_a = sa.slice_time(lo, hi + 1e-9);
  const ts::Series cut_b = sb.slice_time(lo, hi + 1e-9);
  if (cut_a.size() < options.min_overlap_samples ||
      cut_b.size() < options.min_overlap_samples ||
      !has_usable_shape(cut_a.values(), options) ||
      !has_usable_shape(cut_b.values(), options)) {
    p.comparable = false;
    return p;
  }

  // Eq. 7 on the overlapped segments, then the (banded) DTW distance.
  std::vector<double>& va = scratch.va;
  std::vector<double>& vb = scratch.vb;
  switch (options.alignment) {
    case ComparisonOptions::Alignment::kMatchedSamples:
      match_samples(cut_a, cut_b, options.match_gap_s, va, vb);
      if (va.size() < options.min_overlap_samples) {
        p.comparable = false;
        return p;
      }
      break;
    case ComparisonOptions::Alignment::kResampleGrid: {
      const auto grid_points = std::max<std::size_t>(
          static_cast<std::size_t>((hi - lo) / options.grid_period_s) + 1, 2);
      const ts::Series ra = cut_a.resample(grid_points);
      const ts::Series rb = cut_b.resample(grid_points);
      va.assign(ra.values().begin(), ra.values().end());
      vb.assign(rb.values().begin(), rb.values().end());
      break;
    }
    case ComparisonOptions::Alignment::kNone:
      va.assign(cut_a.values().begin(), cut_a.values().end());
      vb.assign(cut_b.values().begin(), cut_b.values().end());
      break;
  }
  cut_timer.stop();
  if (options.z_score_normalize) {
    obs::ScopedTimer zscore_timer(sinks.zscore_ns);
    va = ts::z_score_enhanced(va);
    vb = ts::z_score_enhanced(vb);
  }
  obs::ScopedTimer dtw_timer(sinks.dtw_ns);
  p.raw = pair_distance(va, vb, options, scratch);
  p.normalized = p.raw;
  return p;
}

}  // namespace

void match_samples(const ts::Series& a, const ts::Series& b, double max_gap_s,
                   std::vector<double>& out_a, std::vector<double>& out_b) {
  match_samples_spans(a.times(), a.values(), b.times(), b.values(), max_gap_s,
                      out_a, out_b);
}

std::vector<PairDistance> compare_series(std::span<const NamedSeries> series,
                                         const ComparisonOptions& options) {
  // Series that carry no shape at all are dropped up front (Eq. 7 would map
  // them to near-identical flat lines).
  std::vector<const NamedSeries*> usable;
  for (const NamedSeries& entry : series) {
    if (entry.second.size() < 2) continue;
    if (!has_usable_shape(entry.second.values(), options)) continue;
    usable.push_back(&entry);
  }

  std::vector<PairDistance> pairs;
  if (usable.size() < 2) return pairs;

  // Enumerate the (i, j) pairs up front in Algorithm 1's i < j order and
  // pre-size the output: each worker writes its pair into a fixed slot, so
  // the result vector — and with it Eq. 8's min–max pass below — is
  // bit-identical no matter how many threads run the sweep.
  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  jobs.reserve(usable.size() * (usable.size() - 1) / 2);
  for (std::size_t i = 0; i + 1 < usable.size(); ++i) {
    for (std::size_t j = i + 1; j < usable.size(); ++j) {
      jobs.emplace_back(i, j);
    }
  }
  pairs.resize(jobs.size());

  const PairSinks sinks = resolve_pair_sinks();
  const bool instrumented = obs::enabled();
  obs::ScopedTimer sweep_timer =
      instrumented
          ? obs::ScopedTimer(
                &obs::registry().histogram("comparison.sweep_ns"),
                obs::trace(),
                {.phase = "comparison.sweep",
                 .pairs = static_cast<std::int64_t>(jobs.size())})
          : obs::ScopedTimer();

  const std::size_t threads = std::min(
      options.threads == 0 ? hardware_threads() : options.threads,
      jobs.size());
  std::vector<PairScratch> scratch(std::max<std::size_t>(threads, 1));
  parallel_for(threads, jobs.size(),
               [&](std::size_t worker, std::size_t k) {
                 pairs[k] = compare_pair(*usable[jobs[k].first],
                                         *usable[jobs[k].second], options,
                                         scratch[worker], sinks);
               });
  sweep_timer.stop();

  if (instrumented) {
    obs::MetricsRegistry& registry = obs::registry();
    std::size_t comparable = 0;
    for (const PairDistance& p : pairs) comparable += p.comparable ? 1 : 0;
    registry.counter("comparison.sweeps").add(1);
    registry.counter("comparison.series_heard").add(series.size());
    registry.counter("comparison.series_usable").add(usable.size());
    registry.counter("comparison.pairs_total").add(jobs.size());
    registry.counter("comparison.pairs_comparable").add(comparable);
    registry.counter("comparison.pairs_incomparable")
        .add(jobs.size() - comparable);
    // Per-worker workspace stats, summed: every DTW DP solve of this
    // sweep ran on one of these workspaces.
    ts::DtwWorkspace::Stats dtw_stats;
    for (const PairScratch& s : scratch) {
      dtw_stats.dp_solves += s.workspace.stats.dp_solves;
      dtw_stats.cells += s.workspace.stats.cells;
      dtw_stats.grows += s.workspace.stats.grows;
    }
    registry.counter("dtw.dp_solves").add(dtw_stats.dp_solves);
    registry.counter("dtw.cells_expanded").add(dtw_stats.cells);
    registry.counter("dtw.workspace_grows").add(dtw_stats.grows);
    registry.counter("dtw.workspace_reuse_hits")
        .add(dtw_stats.dp_solves - dtw_stats.grows);
  }

  std::vector<double> values;
  values.reserve(pairs.size());
  for (const PairDistance& p : pairs) {
    if (p.comparable) values.push_back(p.raw);
  }
  obs::ScopedTimer minmax_timer =
      instrumented
          ? obs::ScopedTimer(&obs::registry().histogram("comparison.minmax_ns"))
          : obs::ScopedTimer();
  if (options.min_max_normalize &&
      values.size() >= options.min_pairs_for_min_max) {
    // Eq. 8 over the comparable distances of this window.
    ts::min_max_normalize(values);
    std::size_t cursor = 0;
    for (PairDistance& p : pairs) {
      p.normalized = p.comparable ? values[cursor++] : 1.0;
    }
  } else {
    // Too few pairs for Eq. 8 (or ablation): keep the raw per-step scale.
    for (PairDistance& p : pairs) {
      if (!p.comparable) p.normalized = 1.0;
    }
  }
  return pairs;
}

namespace {

// ---------------------------------------------------------------------------
// Lower-bound cascade (compare_series_pruned)
// ---------------------------------------------------------------------------

// Bounds are mathematically valid in real arithmetic; their floating-point
// evaluation can drift from the ideal value by a few ulps of accumulated
// rounding (~1e-13 relative for these sums). Every pruning comparison pads
// its bound by this relative slack — six orders of magnitude of margin —
// so a rounding difference can never flip a verdict; marginal pairs simply
// fall through to the exact solve.
constexpr double kBoundSlack = 1e-9;
double slack_down(double lb) { return lb * (1.0 - kBoundSlack); }
double slack_up(double ub) { return ub * (1.0 + kBoundSlack); }

// Deepest cascade tier a pair touched; doubles as its exit-tier label for
// the CascadeStats conservation law.
enum class Stage : unsigned char { kSketch, kEnvelope, kFixed, kKernel,
                                   kFull };

struct CascadeRecord {
  ts::SeriesSketch sa, sb;
  // Non-null when the matcher output this side verbatim (identical
  // timestamp grids): the aligned values then live in the original series'
  // own storage — which outlives the sweep — and were never copied into
  // the arena. At fleet scale this is the common case, and skipping the
  // copy keeps the sweep's working set at the size of the input series
  // instead of one arena slot per pair.
  const double* direct_a = nullptr;
  const double* direct_b = nullptr;
  std::size_t worker = 0;  // arena owner
  std::size_t offset = 0;  // aligned a-values at [offset, offset+len),
  std::size_t len = 0;     // b-values at [offset+len, offset+2*len)
  double lb = 0.0;         // per-step lower bound (tightest so far)
  double ub = 0.0;         // per-step diagonal upper bound
  double raw = 0.0;        // exact per-step distance once resolved
  // Index into the sweep's per-series Z-image cache when the aligned
  // values are verbatim the full series (full overlap, no samples dropped
  // by the matcher) — the common same-beacon-rate case. -1 otherwise.
  std::int64_t zcache_a = -1, zcache_b = -1;
  Stage stage = Stage::kSketch;
  bool resolved = false;
};

bool cascade_supported(const ComparisonOptions& options) {
  if (options.distance == DistanceKind::kEuclidean) return false;
  // FastDTW with no band never constrains its window to contain the
  // diagonal, so the staircase upper bound would not be admissible.
  if (options.distance == DistanceKind::kFastDtw && options.dtw_band == 0) {
    return false;
  }
  // kNone alignment can produce unequal lengths; the bounds and the
  // wavefront kernel are equal-length constructions.
  if (options.alignment == ComparisonOptions::Alignment::kNone) return false;
  // The cascade's sketches assume Eq. 7 is in play (z-transformed bounds).
  if (!options.z_score_normalize) return false;
  return true;
}

// Mirror of compare_pair's support cut + alignment, but allocation-free:
// index ranges instead of slice_time copies, spans instead of Series. The
// produced va/vb hold exactly the same doubles, so pairs the cascade must
// resolve exactly reproduce the reference path bit for bit.
bool cascade_align(const NamedSeries& ea, const NamedSeries& eb,
                   const ComparisonOptions& options, PairScratch& scratch,
                   bool& va_is_full, bool& vb_is_full,
                   std::span<const double>& out_a,
                   std::span<const double>& out_b, bool& direct) {
  va_is_full = false;
  vb_is_full = false;
  direct = false;
  const ts::Series& series_a = ea.second;
  const ts::Series& series_b = eb.second;
  const double lo = std::max(series_a.time(0), series_b.time(0));
  const double hi = std::min(series_a.time(series_a.size() - 1),
                             series_b.time(series_b.size() - 1));
  if (hi - lo < options.min_overlap_s) return false;
  const double t_end = hi + 1e-9;  // slice_time's endpoint nudge
  const auto cut = [&](const ts::Series& s, std::span<const double>& times,
                       std::span<const double>& values) {
    const std::span<const double> all = s.times();
    const auto first = static_cast<std::size_t>(
        std::lower_bound(all.begin(), all.end(), lo) - all.begin());
    const auto last = static_cast<std::size_t>(
        std::lower_bound(all.begin(), all.end(), t_end) - all.begin());
    times = all.subspan(first, last - first);
    values = s.values().subspan(first, last - first);
    return first == 0 && last == all.size();
  };
  std::span<const double> ta, va_cut, tb, vb_cut;
  const bool cut_a_full = cut(series_a, ta, va_cut);
  const bool cut_b_full = cut(series_b, tb, vb_cut);
  if (ta.size() < options.min_overlap_samples ||
      tb.size() < options.min_overlap_samples) {
    return false;
  }
  // A full cut is the whole series, which already passed the caller's
  // usable-shape prefilter — re-running the Welford pass on the same
  // values cannot change the answer. Only genuine sub-cuts re-check.
  if ((!cut_a_full && !has_usable_shape(va_cut, options)) ||
      (!cut_b_full && !has_usable_shape(vb_cut, options))) {
    return false;
  }
  switch (options.alignment) {
    case ComparisonOptions::Alignment::kMatchedSamples: {
      // Identical strictly-increasing grids (the common shared-beacon-rate
      // case): the matcher would pair every sample in order, so its output
      // is the cut value spans verbatim (see match_samples_spans' fast
      // path for the equivalence argument). Hand those spans out directly —
      // they point into the series' own storage, no copy.
      bool same_grid = ta.size() == tb.size() && !ta.empty() &&
                       options.match_gap_s >= 0.0;
      if (same_grid) {
        for (std::size_t i = 0; i < ta.size(); ++i) {
          if (ta[i] != tb[i] || (i > 0 && !(ta[i] > ta[i - 1]))) {
            same_grid = false;
            break;
          }
        }
      }
      if (same_grid) {
        if (va_cut.size() < options.min_overlap_samples) return false;
        out_a = va_cut;
        out_b = vb_cut;
        direct = true;
        va_is_full = cut_a_full;
        vb_is_full = cut_b_full;
        return true;
      }
      match_samples_spans(ta, va_cut, tb, vb_cut, options.match_gap_s,
                          scratch.va, scratch.vb);
      if (scratch.va.size() < options.min_overlap_samples) return false;
      // The matcher keeps values in order, so a side that lost nothing
      // (full cut, every sample matched) is verbatim the full series.
      va_is_full = cut_a_full && scratch.va.size() == va_cut.size();
      vb_is_full = cut_b_full && scratch.vb.size() == vb_cut.size();
      break;
    }
    case ComparisonOptions::Alignment::kResampleGrid: {
      const auto grid_points = std::max<std::size_t>(
          static_cast<std::size_t>((hi - lo) / options.grid_period_s) + 1, 2);
      const ts::Series ra =
          ts::Series(std::vector<double>(ta.begin(), ta.end()),
                     std::vector<double>(va_cut.begin(), va_cut.end()))
              .resample(grid_points);
      const ts::Series rb =
          ts::Series(std::vector<double>(tb.begin(), tb.end()),
                     std::vector<double>(vb_cut.begin(), vb_cut.end()))
              .resample(grid_points);
      scratch.va.assign(ra.values().begin(), ra.values().end());
      scratch.vb.assign(rb.values().begin(), rb.values().end());
      break;
    }
    case ComparisonOptions::Alignment::kNone:
      throw InternalError("cascade requires aligned pairs");
  }
  out_a = scratch.va;
  out_b = scratch.vb;
  return true;
}

// Per-step scale conversions under length_normalize: a warp path over two
// length-L series has between L and 2L-1 cells, so accumulated-cost lower
// bounds divide by the longest possible path and upper bounds by the
// shortest.
double lb_per_step(double acc, std::size_t len,
                   const ComparisonOptions& options) {
  return options.length_normalize ? acc / static_cast<double>(2 * len - 1)
                                  : acc;
}
double ub_per_step(double acc, std::size_t len,
                   const ComparisonOptions& options) {
  return options.length_normalize ? acc / static_cast<double>(len) : acc;
}

// Phase A for one pair: cut + align + raw-domain sketches + the O(1)/O(n)
// sketch bounds. Aligned values are parked in the worker's SoA arena; the
// Z-images are deliberately NOT materialised — pruned pairs never pay the
// Eq. 7 pass.
void cascade_sketch_pair(const NamedSeries& ea, std::size_t idx_a,
                         const NamedSeries& eb, std::size_t idx_b,
                         const ComparisonOptions& options,
                         PairScratch& scratch, std::size_t worker,
                         std::span<const ts::SeriesSketch> series_sketches,
                         PairDistance& p, CascadeRecord& rec) {
  p.a = ea.first;
  p.b = eb.first;
  bool va_is_full = false;
  bool vb_is_full = false;
  std::span<const double> av, bv;
  bool direct = false;
  if (!cascade_align(ea, eb, options, scratch, va_is_full, vb_is_full, av, bv,
                     direct)) {
    p.comparable = false;
    p.normalized = 1.0;
    return;
  }
  VP_ENSURE(av.size() == bv.size() && !av.empty());
  if (va_is_full) rec.zcache_a = static_cast<std::int64_t>(idx_a);
  if (vb_is_full) rec.zcache_b = static_cast<std::int64_t>(idx_b);
  rec.worker = worker;
  rec.len = av.size();
  if (direct) {
    rec.direct_a = av.data();
    rec.direct_b = bv.data();
  } else {
    std::vector<double>& arena = scratch.workspace.batch_values;
    rec.offset = arena.size();
    arena.insert(arena.end(), av.begin(), av.end());
    arena.insert(arena.end(), bv.begin(), bv.end());
  }
  // A side aligned in full is the whole series, whose sketch the sweep
  // precomputed once — a fleet-sized neighborhood would otherwise sketch
  // every series N-1 times.
  rec.sa = va_is_full && !series_sketches.empty()
               ? series_sketches[idx_a]
               : ts::sketch_series(av);
  rec.sb = vb_is_full && !series_sketches.empty()
               ? series_sketches[idx_b]
               : ts::sketch_series(bv);
  rec.lb =
      lb_per_step(ts::lb_kim(rec.sa, rec.sb, options.cost), rec.len, options);
  rec.ub = ub_per_step(
      ts::diagonal_upper_bound(av, rec.sa, bv, rec.sb, options.cost), rec.len,
      options);
}

std::span<const double> arena_a(std::span<const PairScratch> scratch,
                                const CascadeRecord& rec) {
  if (rec.direct_a) return {rec.direct_a, rec.len};
  return {scratch[rec.worker].workspace.batch_values.data() + rec.offset,
          rec.len};
}
std::span<const double> arena_b(std::span<const PairScratch> scratch,
                                const CascadeRecord& rec) {
  if (rec.direct_b) return {rec.direct_b, rec.len};
  return {scratch[rec.worker].workspace.batch_values.data() + rec.offset +
              rec.len,
          rec.len};
}

// Tightens rec.lb with LB_Keogh (idempotent; reuses the workspace's
// envelope buffers). `target` is the per-step value the refined bound
// would have to clear for the caller's pruning test to fire: LB_Keogh
// never exceeds the accumulated diagonal cost, so when even that cap
// (ub·L/(2L-1) per step) cannot reach the target, the O(n·band) envelope
// pass is provably pointless and skipped — the pair keeps its kSketch
// stage and a later caller with a reachable target may still refine it.
void refine_keogh(CascadeRecord& rec, std::span<const PairScratch> scratch_all,
                  const ComparisonOptions& options, PairScratch& scratch,
                  double target) {
  if (rec.stage != Stage::kSketch) return;
  const double cap =
      options.length_normalize
          ? rec.ub * (static_cast<double>(rec.len) /
                      static_cast<double>(2 * rec.len - 1))
          : rec.ub;
  if (!(cap > target)) return;
  rec.lb = std::max(
      rec.lb,
      lb_per_step(ts::lb_keogh(arena_a(scratch_all, rec), rec.sa,
                               arena_b(scratch_all, rec), rec.sb,
                               options.dtw_band, options.cost,
                               scratch.workspace),
                  rec.len, options));
  rec.stage = Stage::kEnvelope;
}

// Runs the banded wavefront kernel against a per-step discard threshold:
// abandoning (or completing with a banded bound past the threshold) lets
// the caller discard the pair without the full solve. Materialises the
// pair's Z-images into workspace.zx/zy as a side effect — a subsequent
// resolve_fast_from_z reuses them.
struct KernelProbe {
  double lb = 0.0;       // refined per-step lower bound
  double raw = 0.0;      // exact per-step distance (kExactDtw, completed)
  bool resolved = false;
  // The integer Q4.12 tier proved the discard and the float kernel never
  // ran (the caller tallies the pair as fixed_pruned, not early_abandoned).
  bool fixed = false;
};

KernelProbe kernel_probe(std::span<const double> a, std::span<const double> b,
                         const std::vector<double>* za_cache,
                         const std::vector<double>* zb_cache,
                         const ComparisonOptions& options,
                         PairScratch& scratch, double discard_above) {
  // A cached full-series Z-image is the image of these exact doubles
  // (z_score_enhanced is a pure function of the value array), so copying
  // it replaces the Welford pass bit for bit.
  if (za_cache) {
    scratch.workspace.zx = *za_cache;
  } else {
    ts::z_score_enhanced(a, scratch.workspace.zx);
  }
  if (zb_cache) {
    scratch.workspace.zy = *zb_cache;
  } else {
    ts::z_score_enhanced(b, scratch.workspace.zy);
  }
  const double steps_max = static_cast<double>(2 * a.size() - 1);
  KernelProbe probe;
  if (options.fixed_lower_bound && std::isfinite(discard_above) &&
      discard_above >= 0.0) {
    // Integer pre-probe (DESIGN.md §15): the certified Q4.12 bound on the
    // banded optimum lower-bounds the (Fast)DTW cost by the same subset
    // argument as the float kernel below. The 1e-6 margin mirrors the
    // abandon path's, so the caller's slack-padded re-check of the
    // discard robustly fires.
    const double flb_acc = ts::fixed_banded_lower_bound(
        scratch.workspace.zx, scratch.workspace.zy, options.dtw_band,
        options.cost, scratch.fixed);
    const double flb =
        options.length_normalize ? flb_acc / steps_max : flb_acc;
    if (flb > 0.0 && flb > discard_above * (1.0 + 1e-6)) {
      probe.lb = flb;
      probe.fixed = true;
      return probe;
    }
  }
  double abandon_acc = std::numeric_limits<double>::infinity();
  if (std::isfinite(discard_above) && discard_above >= 0.0) {
    // Margin on top of the caller's threshold so the post-abandon check
    // below robustly reproves the discard (1e-6 ≫ kBoundSlack).
    abandon_acc = options.length_normalize
                      ? discard_above * steps_max * (1.0 + 1e-6)
                      : discard_above * (1.0 + 1e-6);
  }
  const ts::BandedDistance kd = ts::banded_dtw_distance(
      scratch.workspace.zx, scratch.workspace.zy, options.dtw_band,
      options.cost, abandon_acc, options.use_simd, scratch.workspace);
  if (kd.abandoned) {
    // The banded optimum provably exceeds abandon_acc.
    probe.lb = options.length_normalize ? abandon_acc / steps_max
                                        : abandon_acc;
    return probe;
  }
  if (options.distance == DistanceKind::kExactDtw) {
    probe.raw = options.length_normalize
                    ? kd.distance / static_cast<double>(kd.path_cells)
                    : kd.distance;
    probe.lb = probe.raw;
    probe.resolved = true;
    return probe;
  }
  // FastDTW's band-constrained window is a subset of the full band window,
  // so the banded optimum lower-bounds the FastDTW accumulated cost, and
  // its path (like any path) has at most 2L-1 cells.
  probe.lb = options.length_normalize ? kd.distance / steps_max : kd.distance;
  return probe;
}

// Full FastDTW solve on the Z-images already sitting in workspace.zx/zy —
// the same expressions as pair_distance's kFastDtw branch, hence the same
// bits.
double resolve_fast_from_z(const ComparisonOptions& options,
                           PairScratch& scratch) {
  ts::fast_dtw(scratch.workspace.zx, scratch.workspace.zy,
               {.radius = options.fastdtw_radius,
                .cost = options.cost,
                .band = options.dtw_band},
               scratch.workspace, scratch.result);
  return options.length_normalize
             ? scratch.result.distance /
                   static_cast<double>(scratch.result.path.size())
             : scratch.result.distance;
}

// Exact distance for one pair (Z-score + solve), used where no probe ran.
double cascade_resolve(std::span<const double> a, std::span<const double> b,
                       const std::vector<double>* za_cache,
                       const std::vector<double>* zb_cache,
                       const ComparisonOptions& options,
                       PairScratch& scratch) {
  const KernelProbe probe =
      kernel_probe(a, b, za_cache, zb_cache, options, scratch,
                   std::numeric_limits<double>::infinity());
  if (probe.resolved) return probe.raw;
  return resolve_fast_from_z(options, scratch);
}

}  // namespace

std::vector<PairDistance> compare_series_pruned(
    std::span<const NamedSeries> series, const ComparisonOptions& options,
    double decision_threshold, CascadeStats* stats_out) {
  CascadeStats stats;
  if (!cascade_supported(options)) {
    // Reference sweep, then classify; every comparable pair is tallied as
    // a full sweep so the conservation law still holds.
    std::vector<PairDistance> pairs = compare_series(series, options);
    for (PairDistance& p : pairs) {
      if (!p.comparable) continue;
      p.flagged = p.normalized <= decision_threshold;
      ++stats.full_sweeps;
    }
    if (obs::enabled()) {
      obs::registry().counter("dtw.full_sweeps").add(stats.full_sweeps);
    }
    if (stats_out) *stats_out = stats;
    return pairs;
  }

  std::vector<const NamedSeries*> usable;
  for (const NamedSeries& entry : series) {
    if (entry.second.size() < 2) continue;
    if (!has_usable_shape(entry.second.values(), options)) continue;
    usable.push_back(&entry);
  }
  std::vector<PairDistance> pairs;
  if (usable.size() < 2) {
    if (stats_out) *stats_out = stats;
    return pairs;
  }
  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  jobs.reserve(usable.size() * (usable.size() - 1) / 2);
  for (std::size_t i = 0; i + 1 < usable.size(); ++i) {
    for (std::size_t j = i + 1; j < usable.size(); ++j) {
      jobs.emplace_back(i, j);
    }
  }
  pairs.resize(jobs.size());
  std::vector<CascadeRecord> recs(jobs.size());

  const bool instrumented = obs::enabled();
  obs::ScopedTimer sweep_timer =
      instrumented
          ? obs::ScopedTimer(
                &obs::registry().histogram("comparison.sweep_ns"),
                obs::trace(),
                {.phase = "comparison.sweep",
                 .pairs = static_cast<std::int64_t>(jobs.size())})
          : obs::ScopedTimer();

  const std::size_t threads = std::min(
      options.threads == 0 ? hardware_threads() : options.threads,
      jobs.size());
  std::vector<PairScratch> scratch(std::max<std::size_t>(threads, 1));
  const std::span<const PairScratch> scratch_view(scratch);

  // Pre-size each worker's SoA arena: Phase A appends every pair's aligned
  // values, and letting the vectors grow geometrically re-copies hundreds
  // of kilobytes per round. Indices are claimed dynamically, so each
  // worker sees roughly an even share; the 9/8 margin absorbs imbalance
  // and any shortfall just falls back to growth.
  {
    std::size_t total = 0;
    for (const auto& [i, j] : jobs) {
      total +=
          2 * std::min(usable[i]->second.size(), usable[j]->second.size());
    }
    const std::size_t share =
        scratch.size() > 1 ? total / scratch.size() + total / 8 : total;
    for (PairScratch& s : scratch) {
      s.workspace.batch_values.reserve(std::min(total, share));
    }
  }

  // Whole-series sketches, once per series: any pair that aligns a side in
  // full reuses the cached sketch instead of re-summarising the same
  // doubles (the cache is exact — same function, same input).
  std::vector<ts::SeriesSketch> series_sketches(usable.size());
  parallel_for(threads, usable.size(), [&](std::size_t, std::size_t i) {
    series_sketches[i] = ts::sketch_series(usable[i]->second.values());
  });

  // Phase A (parallel): cut, align, sketch. No Z-images, no DTW.
  parallel_for(threads, jobs.size(), [&](std::size_t worker, std::size_t k) {
    cascade_sketch_pair(*usable[jobs[k].first], jobs[k].first,
                        *usable[jobs[k].second], jobs[k].second, options,
                        scratch[worker], worker, series_sketches, pairs[k],
                        recs[k]);
  });

  std::vector<std::size_t> comparable;
  comparable.reserve(jobs.size());
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    if (pairs[k].comparable) comparable.push_back(k);
  }

  // Per-series Z-image cache: a series at full beacon rate participates in
  // up to N-1 pairs whose aligned values are the whole series verbatim, so
  // its Eq. 7 image — the hottest fixed cost of an exact resolve — is
  // computed once here instead of once per pair. Computed only for series
  // at least one pair actually aligned in full.
  std::vector<std::vector<double>> full_z(usable.size());
  {
    std::vector<std::uint8_t> wanted(usable.size(), 0);
    for (const std::size_t k : comparable) {
      if (recs[k].zcache_a >= 0) wanted[recs[k].zcache_a] = 1;
      if (recs[k].zcache_b >= 0) wanted[recs[k].zcache_b] = 1;
    }
    parallel_for(threads, usable.size(), [&](std::size_t, std::size_t i) {
      if (wanted[i]) ts::z_score_enhanced(usable[i]->second.values(),
                                          full_z[i]);
    });
  }
  const auto zcache = [&](std::int64_t idx) {
    return idx >= 0 ? &full_z[static_cast<std::size_t>(idx)] : nullptr;
  };

  const double thr = decision_threshold;
  const bool minmax = options.min_max_normalize &&
                      comparable.size() >= options.min_pairs_for_min_max;
  double vmin = 0.0;
  double range = 1.0;
  bool degenerate = false;

  if (minmax) {
    // Eq. 8 needs the EXACT population min and max of the raw distances.
    // UCR-style best-so-far searches locate them, skipping any pair whose
    // bound proves it cannot move the extreme — skipped pairs provably do
    // not change the extreme's value, so vmin/vmax come out bitwise
    // identical to the exact path's minmax_element. Each search seeds a
    // serial exact resolve of its strongest candidate, then fans the
    // remaining skip tests out in parallel against that fixed target.
    PairScratch& s0 = scratch[0];

    // Seed: the smallest-UB pair is the strongest minimum candidate;
    // resolving it exactly gives every later skip test a tight target.
    std::size_t seed = comparable.front();
    for (const std::size_t k : comparable) {
      if (recs[k].ub < recs[seed].ub ||
          (recs[k].ub == recs[seed].ub && k < seed)) {
        seed = k;
      }
    }
    {
      CascadeRecord& rec = recs[seed];
      rec.raw = cascade_resolve(arena_a(scratch_view, rec),
                                arena_b(scratch_view, rec),
                                zcache(rec.zcache_a), zcache(rec.zcache_b),
                                options, s0);
      rec.resolved = true;
      rec.stage = Stage::kFull;
    }
    double best_min = recs[seed].raw;

    // Envelope pass against the FIXED seed value, in arena (index) order
    // and in parallel: the searches are correct under any visit order and
    // any intermediate target — a skipped pair's certified lb exceeded a
    // value that is itself >= the final minimum — and index order walks
    // the SoA arena sequentially instead of striding it by sort rank,
    // which at fleet scale is the difference between cache hits and a
    // memory stall per pair. A fixed target also makes the pass
    // embarrassingly parallel yet bitwise deterministic.
    const double m0 = best_min;
    parallel_for(threads, comparable.size(),
                 [&](std::size_t worker, std::size_t idx) {
                   CascadeRecord& rec = recs[comparable[idx]];
                   if (rec.resolved || slack_down(rec.lb) >= m0) return;
                   refine_keogh(rec, scratch_view, options, scratch[worker],
                                m0);
                 });

    // The few pairs whose refined lb cannot rule them out (in practice the
    // near-minimum cluster) get the exact treatment serially, with the
    // best-so-far tightening as it goes.
    for (const std::size_t k : comparable) {
      CascadeRecord& rec = recs[k];
      if (rec.resolved) continue;
      if (slack_down(rec.lb) >= best_min) continue;
      const KernelProbe probe =
          kernel_probe(arena_a(scratch_view, rec), arena_b(scratch_view, rec),
                       zcache(rec.zcache_a), zcache(rec.zcache_b), options,
                       s0, best_min);
      const Stage probed = probe.fixed ? Stage::kFixed : Stage::kKernel;
      if (rec.stage < probed) rec.stage = probed;
      if (probe.resolved) {
        rec.raw = probe.raw;
        rec.resolved = true;
        rec.stage = Stage::kFull;
        best_min = std::min(best_min, rec.raw);
        continue;
      }
      rec.lb = std::max(rec.lb, probe.lb);
      if (slack_down(rec.lb) >= best_min) continue;
      rec.raw = resolve_fast_from_z(options, s0);
      rec.resolved = true;
      rec.stage = Stage::kFull;
      best_min = std::min(best_min, rec.raw);
    }

    double best_max = -std::numeric_limits<double>::infinity();
    for (const std::size_t k : comparable) {
      if (recs[k].resolved) best_max = std::max(best_max, recs[k].raw);
    }
    // Seed the maximum search like the minimum one, with the two strongest
    // candidates: the largest-LB pair (the highest certified floor — its
    // exact value is at least every other pair's lower bound, which makes
    // it the likely true maximum) and the largest-UB pair. Resolving both
    // pins best_max at (almost always) the true maximum, so the parallel
    // pass below only resolves the pairs whose padded UB genuinely exceeds
    // it — the same set a UB-descending sorted sweep would resolve, but
    // visited in arena order and concurrently.
    const auto resolve_exact = [&](std::size_t k) {
      CascadeRecord& rec = recs[k];
      rec.raw = cascade_resolve(arena_a(scratch_view, rec),
                                arena_b(scratch_view, rec),
                                zcache(rec.zcache_a), zcache(rec.zcache_b),
                                options, s0);
      rec.resolved = true;
      rec.stage = Stage::kFull;
      best_max = std::max(best_max, rec.raw);
    };
    const auto seed_by = [&](auto&& key) {
      std::size_t best = comparable.size();  // sentinel: none
      for (const std::size_t k : comparable) {
        const CascadeRecord& rec = recs[k];
        if (rec.resolved || slack_up(rec.ub) <= best_max) continue;
        if (best == comparable.size() || key(rec) > key(recs[best])) {
          best = k;
        }
      }
      if (best != comparable.size()) resolve_exact(best);
    };
    seed_by([](const CascadeRecord& rec) { return rec.lb; });
    seed_by([](const CascadeRecord& rec) { return rec.ub; });
    // Every unresolved pair with padded UB at or under the fixed target
    // provably cannot move the maximum; the rest get resolved exactly.
    // Per-pair work is independent and exact, so the pass parallelises
    // without losing bitwise determinism.
    const double m1 = best_max;
    parallel_for(threads, comparable.size(),
                 [&](std::size_t worker, std::size_t idx) {
                   CascadeRecord& rec = recs[comparable[idx]];
                   if (rec.resolved || slack_up(rec.ub) <= m1) return;
                   rec.raw = cascade_resolve(
                       arena_a(scratch_view, rec), arena_b(scratch_view, rec),
                       zcache(rec.zcache_a), zcache(rec.zcache_b), options,
                       scratch[worker]);
                   rec.resolved = true;
                   rec.stage = Stage::kFull;
                 });
    for (const std::size_t k : comparable) {
      if (recs[k].resolved) best_max = std::max(best_max, recs[k].raw);
    }

    vmin = best_min;
    if (!(best_max > vmin)) {
      degenerate = true;  // min_max_normalize's all-zeros branch
    } else {
      range = best_max - vmin;
    }
  }

  // Phase C (parallel): classify every pair at the cheapest conclusive
  // tier. The normalisation (v - vmin) / range is the same monotone
  // floating-point transform min_max_normalize applies, so comparing a
  // transformed bound against the threshold decides exactly like the
  // exact path would.
  if (degenerate) {
    const bool flag = 0.0 <= thr;
    for (const std::size_t k : comparable) {
      pairs[k].normalized = 0.0;
      pairs[k].raw = recs[k].resolved ? recs[k].raw : recs[k].lb;
      pairs[k].flagged = flag;
    }
  } else {
    const auto classify = [&](std::size_t worker, std::size_t idx) {
      const std::size_t k = comparable[idx];
      CascadeRecord& rec = recs[k];
      PairDistance& p = pairs[k];
      PairScratch& local = scratch[worker];
      const auto norm = [&](double v) {
        return minmax ? (v - vmin) / range : v;
      };
      const auto decide = [&]() {
        if (norm(slack_down(rec.lb)) > thr) {
          p.flagged = false;
          p.raw = rec.lb;
          p.normalized = norm(rec.lb);
          return true;
        }
        if (norm(slack_up(rec.ub)) <= thr) {
          p.flagged = true;
          p.raw = rec.ub;
          p.normalized = norm(rec.ub);
          return true;
        }
        return false;
      };
      const auto finish_exact = [&]() {
        p.raw = rec.raw;
        p.normalized = norm(rec.raw);
        p.flagged = p.normalized <= thr;
      };
      if (rec.resolved) {
        finish_exact();
        return;
      }
      if (decide()) return;
      // Raw-domain value past which "not flagged" is provable; the probe
      // pads it, and the decision is re-verified through `decide`.
      const double discard = minmax ? vmin + thr * range : thr;
      refine_keogh(rec, scratch_view, options, local, discard);
      if (decide()) return;
      const KernelProbe probe =
          kernel_probe(arena_a(scratch_view, rec), arena_b(scratch_view, rec),
                       zcache(rec.zcache_a), zcache(rec.zcache_b), options,
                       local, discard);
      const Stage probed = probe.fixed ? Stage::kFixed : Stage::kKernel;
      if (rec.stage < probed) rec.stage = probed;
      if (probe.resolved) {
        rec.raw = probe.raw;
        rec.resolved = true;
        rec.stage = Stage::kFull;
        finish_exact();
        return;
      }
      rec.lb = std::max(rec.lb, probe.lb);
      if (decide()) return;
      rec.raw = resolve_fast_from_z(options, local);
      rec.resolved = true;
      rec.stage = Stage::kFull;
      finish_exact();
    };
    parallel_for(threads, comparable.size(), classify);
  }
  sweep_timer.stop();

  for (const std::size_t k : comparable) {
    switch (recs[k].stage) {
      case Stage::kSketch:
        ++stats.lb_kim_pruned;
        break;
      case Stage::kEnvelope:
        ++stats.lb_keogh_pruned;
        break;
      case Stage::kFixed:
        ++stats.fixed_pruned;
        break;
      case Stage::kKernel:
        ++stats.early_abandoned;
        break;
      case Stage::kFull:
        ++stats.full_sweeps;
        break;
    }
  }

  if (instrumented) {
    obs::MetricsRegistry& registry = obs::registry();
    registry.counter("comparison.sweeps").add(1);
    registry.counter("comparison.series_heard").add(series.size());
    registry.counter("comparison.series_usable").add(usable.size());
    registry.counter("comparison.pairs_total").add(jobs.size());
    registry.counter("comparison.pairs_comparable").add(comparable.size());
    registry.counter("comparison.pairs_incomparable")
        .add(jobs.size() - comparable.size());
    registry.counter("dtw.lb_kim_pruned").add(stats.lb_kim_pruned);
    registry.counter("dtw.lb_keogh_pruned").add(stats.lb_keogh_pruned);
    registry.counter("dtw.fixed_pruned").add(stats.fixed_pruned);
    registry.counter("dtw.early_abandoned").add(stats.early_abandoned);
    registry.counter("dtw.full_sweeps").add(stats.full_sweeps);
    ts::DtwWorkspace::Stats dtw_stats;
    for (const PairScratch& s : scratch) {
      dtw_stats.dp_solves += s.workspace.stats.dp_solves;
      dtw_stats.cells += s.workspace.stats.cells;
      dtw_stats.grows += s.workspace.stats.grows;
    }
    registry.counter("dtw.dp_solves").add(dtw_stats.dp_solves);
    registry.counter("dtw.cells_expanded").add(dtw_stats.cells);
    registry.counter("dtw.workspace_grows").add(dtw_stats.grows);
    registry.counter("dtw.workspace_reuse_hits")
        .add(dtw_stats.dp_solves - dtw_stats.grows);
  }
  if (stats_out) *stats_out = stats;
  return pairs;
}

std::vector<PairDistance> compare_window(const sim::ObservationWindow& window,
                                         const ComparisonOptions& options) {
  std::vector<NamedSeries> series;
  series.reserve(window.neighbors.size());
  for (const sim::NeighborObservation& n : window.neighbors) {
    series.emplace_back(n.id, n.rssi);
  }
  return compare_series(series, options);
}

}  // namespace vp::core
