#include "core/comparison.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "obs/runtime.h"
#include "obs/timer.h"
#include "timeseries/dtw.h"
#include "timeseries/lp_distance.h"
#include "timeseries/normalize.h"

namespace vp::core {

namespace {

// Per-worker scratch for the pairwise sweep: one DTW workspace plus the
// alignment buffers, so the hot loop reuses its allocations across pairs.
struct PairScratch {
  ts::DtwWorkspace workspace;
  ts::DtwResult result;
  std::vector<double> va, vb;
};

// Histogram sinks for the per-pair sub-phases, resolved from the registry
// once per sweep (registry lookup takes a mutex; the pair loop must not).
// Null when observability is disabled — compare_pair then reads no clocks.
struct PairSinks {
  obs::Histogram* cut_align_ns = nullptr;  // support cut + sample alignment
  obs::Histogram* zscore_ns = nullptr;     // Eq. 7 enhanced Z-score
  obs::Histogram* dtw_ns = nullptr;        // the DTW/Euclidean distance call
};

PairSinks resolve_pair_sinks() {
  PairSinks sinks;
  if (!obs::enabled()) return sinks;
  obs::MetricsRegistry& registry = obs::registry();
  sinks.cut_align_ns = &registry.histogram("comparison.pair_cut_align_ns");
  sinks.zscore_ns = &registry.histogram("comparison.pair_zscore_ns");
  sinks.dtw_ns = &registry.histogram("comparison.pair_dtw_ns");
  return sinks;
}

double pair_distance(const std::vector<double>& x, const std::vector<double>& y,
                     const ComparisonOptions& options, PairScratch& scratch) {
  switch (options.distance) {
    case DistanceKind::kFastDtw: {
      ts::fast_dtw(x, y,
                   {.radius = options.fastdtw_radius,
                    .cost = options.cost,
                    .band = options.dtw_band},
                   scratch.workspace, scratch.result);
      return options.length_normalize
                 ? scratch.result.distance /
                       static_cast<double>(scratch.result.path.size())
                 : scratch.result.distance;
    }
    case DistanceKind::kExactDtw: {
      if (options.dtw_band > 0) {
        ts::dtw_banded(x, y, options.dtw_band, options.cost, scratch.workspace,
                       scratch.result);
      } else {
        ts::dtw(x, y, options.cost, scratch.workspace, scratch.result);
      }
      return options.length_normalize
                 ? scratch.result.distance /
                       static_cast<double>(scratch.result.path.size())
                 : scratch.result.distance;
    }
    case DistanceKind::kEuclidean: {
      // Euclidean needs equal lengths; packet loss makes them unequal, so
      // resample the longer one down to the shorter (Section IV-B explains
      // why the paper rejects this).
      const auto n = std::min(x.size(), y.size());
      double d;
      if (x.size() == y.size()) {
        d = ts::euclidean_distance(x, y);
      } else {
        const ts::Series xs = ts::Series::uniform(0.0, 1.0, x).resample(n);
        const ts::Series ys = ts::Series::uniform(0.0, 1.0, y).resample(n);
        d = ts::euclidean_distance(xs.values(), ys.values());
      }
      return options.length_normalize ? d / std::sqrt(static_cast<double>(n))
                                      : d;
    }
  }
  throw InternalError("unknown distance kind");
}

// True if the series carries enough shape to be compared (see
// ComparisonOptions::min_series_stddev_db).
bool has_usable_shape(std::span<const double> values,
                      const ComparisonOptions& options) {
  if (options.min_series_stddev_db <= 0.0) return true;
  RunningStats stats;
  std::size_t at_floor = 0;
  for (double v : values) {
    stats.add(v);
    if (v <= options.sensitivity_floor_dbm + 0.25) ++at_floor;
  }
  if (std::sqrt(stats.population_variance()) < options.min_series_stddev_db) {
    return false;
  }
  return static_cast<double>(at_floor) <=
         options.max_floor_fraction * static_cast<double>(values.size());
}

// One (a, b) comparison: common-support restriction, alignment, Eq. 7 and
// the DTW distance, using only `scratch`'s buffers for the hot allocations.
PairDistance compare_pair(const NamedSeries& ea, const NamedSeries& eb,
                          const ComparisonOptions& options,
                          PairScratch& scratch, const PairSinks& sinks) {
  const ts::Series& sa = ea.second;
  const ts::Series& sb = eb.second;
  PairDistance p;
  p.a = ea.first;
  p.b = eb.first;

  obs::ScopedTimer cut_timer(sinks.cut_align_ns);
  // Restrict to the common time support.
  const double lo = std::max(sa.time(0), sb.time(0));
  const double hi = std::min(sa.time(sa.size() - 1), sb.time(sb.size() - 1));
  if (hi - lo < options.min_overlap_s) {
    p.comparable = false;
    return p;
  }
  // Half-open slice: nudge the upper bound to include the endpoint.
  const ts::Series cut_a = sa.slice_time(lo, hi + 1e-9);
  const ts::Series cut_b = sb.slice_time(lo, hi + 1e-9);
  if (cut_a.size() < options.min_overlap_samples ||
      cut_b.size() < options.min_overlap_samples ||
      !has_usable_shape(cut_a.values(), options) ||
      !has_usable_shape(cut_b.values(), options)) {
    p.comparable = false;
    return p;
  }

  // Eq. 7 on the overlapped segments, then the (banded) DTW distance.
  std::vector<double>& va = scratch.va;
  std::vector<double>& vb = scratch.vb;
  switch (options.alignment) {
    case ComparisonOptions::Alignment::kMatchedSamples:
      match_samples(cut_a, cut_b, options.match_gap_s, va, vb);
      if (va.size() < options.min_overlap_samples) {
        p.comparable = false;
        return p;
      }
      break;
    case ComparisonOptions::Alignment::kResampleGrid: {
      const auto grid_points = std::max<std::size_t>(
          static_cast<std::size_t>((hi - lo) / options.grid_period_s) + 1, 2);
      const ts::Series ra = cut_a.resample(grid_points);
      const ts::Series rb = cut_b.resample(grid_points);
      va.assign(ra.values().begin(), ra.values().end());
      vb.assign(rb.values().begin(), rb.values().end());
      break;
    }
    case ComparisonOptions::Alignment::kNone:
      va.assign(cut_a.values().begin(), cut_a.values().end());
      vb.assign(cut_b.values().begin(), cut_b.values().end());
      break;
  }
  cut_timer.stop();
  if (options.z_score_normalize) {
    obs::ScopedTimer zscore_timer(sinks.zscore_ns);
    va = ts::z_score_enhanced(va);
    vb = ts::z_score_enhanced(vb);
  }
  obs::ScopedTimer dtw_timer(sinks.dtw_ns);
  p.raw = pair_distance(va, vb, options, scratch);
  p.normalized = p.raw;
  return p;
}

}  // namespace

void match_samples(const ts::Series& a, const ts::Series& b, double max_gap_s,
                   std::vector<double>& out_a, std::vector<double>& out_b) {
  out_a.clear();
  out_b.clear();
  std::size_t j = 0;
  for (std::size_t i = 0; i < a.size() && j < b.size(); ++i) {
    const double t = a.time(i);
    while (j + 1 < b.size() &&
           std::fabs(b.time(j + 1) - t) <= std::fabs(b.time(j) - t)) {
      ++j;
    }
    if (std::fabs(b.time(j) - t) > max_gap_s) continue;
    // Leave b[j] to the next a-sample when that one is strictly closer:
    // otherwise a marginal earlier match consumes the partner and the final
    // a-sample exits unmatched even though it had the better claim.
    if (i + 1 < a.size() &&
        std::fabs(b.time(j) - a.time(i + 1)) < std::fabs(b.time(j) - t)) {
      continue;
    }
    out_a.push_back(a.value(i));
    out_b.push_back(b.value(j));
    ++j;  // consume the matched sample
  }
}

std::vector<PairDistance> compare_series(std::span<const NamedSeries> series,
                                         const ComparisonOptions& options) {
  // Series that carry no shape at all are dropped up front (Eq. 7 would map
  // them to near-identical flat lines).
  std::vector<const NamedSeries*> usable;
  for (const NamedSeries& entry : series) {
    if (entry.second.size() < 2) continue;
    if (!has_usable_shape(entry.second.values(), options)) continue;
    usable.push_back(&entry);
  }

  std::vector<PairDistance> pairs;
  if (usable.size() < 2) return pairs;

  // Enumerate the (i, j) pairs up front in Algorithm 1's i < j order and
  // pre-size the output: each worker writes its pair into a fixed slot, so
  // the result vector — and with it Eq. 8's min–max pass below — is
  // bit-identical no matter how many threads run the sweep.
  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  jobs.reserve(usable.size() * (usable.size() - 1) / 2);
  for (std::size_t i = 0; i + 1 < usable.size(); ++i) {
    for (std::size_t j = i + 1; j < usable.size(); ++j) {
      jobs.emplace_back(i, j);
    }
  }
  pairs.resize(jobs.size());

  const PairSinks sinks = resolve_pair_sinks();
  const bool instrumented = obs::enabled();
  obs::ScopedTimer sweep_timer =
      instrumented
          ? obs::ScopedTimer(
                &obs::registry().histogram("comparison.sweep_ns"),
                obs::trace(),
                {.phase = "comparison.sweep",
                 .pairs = static_cast<std::int64_t>(jobs.size())})
          : obs::ScopedTimer();

  const std::size_t threads = std::min(
      options.threads == 0 ? hardware_threads() : options.threads,
      jobs.size());
  std::vector<PairScratch> scratch(std::max<std::size_t>(threads, 1));
  parallel_for(threads, jobs.size(),
               [&](std::size_t worker, std::size_t k) {
                 pairs[k] = compare_pair(*usable[jobs[k].first],
                                         *usable[jobs[k].second], options,
                                         scratch[worker], sinks);
               });
  sweep_timer.stop();

  if (instrumented) {
    obs::MetricsRegistry& registry = obs::registry();
    std::size_t comparable = 0;
    for (const PairDistance& p : pairs) comparable += p.comparable ? 1 : 0;
    registry.counter("comparison.sweeps").add(1);
    registry.counter("comparison.series_heard").add(series.size());
    registry.counter("comparison.series_usable").add(usable.size());
    registry.counter("comparison.pairs_total").add(jobs.size());
    registry.counter("comparison.pairs_comparable").add(comparable);
    registry.counter("comparison.pairs_incomparable")
        .add(jobs.size() - comparable);
    // Per-worker workspace stats, summed: every DTW DP solve of this
    // sweep ran on one of these workspaces.
    ts::DtwWorkspace::Stats dtw_stats;
    for (const PairScratch& s : scratch) {
      dtw_stats.dp_solves += s.workspace.stats.dp_solves;
      dtw_stats.cells += s.workspace.stats.cells;
      dtw_stats.grows += s.workspace.stats.grows;
    }
    registry.counter("dtw.dp_solves").add(dtw_stats.dp_solves);
    registry.counter("dtw.cells_expanded").add(dtw_stats.cells);
    registry.counter("dtw.workspace_grows").add(dtw_stats.grows);
    registry.counter("dtw.workspace_reuse_hits")
        .add(dtw_stats.dp_solves - dtw_stats.grows);
  }

  std::vector<double> values;
  values.reserve(pairs.size());
  for (const PairDistance& p : pairs) {
    if (p.comparable) values.push_back(p.raw);
  }
  obs::ScopedTimer minmax_timer =
      instrumented
          ? obs::ScopedTimer(&obs::registry().histogram("comparison.minmax_ns"))
          : obs::ScopedTimer();
  if (options.min_max_normalize &&
      values.size() >= options.min_pairs_for_min_max) {
    // Eq. 8 over the comparable distances of this window.
    ts::min_max_normalize(values);
    std::size_t cursor = 0;
    for (PairDistance& p : pairs) {
      p.normalized = p.comparable ? values[cursor++] : 1.0;
    }
  } else {
    // Too few pairs for Eq. 8 (or ablation): keep the raw per-step scale.
    for (PairDistance& p : pairs) {
      if (!p.comparable) p.normalized = 1.0;
    }
  }
  return pairs;
}

std::vector<PairDistance> compare_window(const sim::ObservationWindow& window,
                                         const ComparisonOptions& options) {
  std::vector<NamedSeries> series;
  series.reserve(window.neighbors.size());
  for (const sim::NeighborObservation& n : window.neighbors) {
    series.emplace_back(n.id, n.rssi);
  }
  return compare_series(series, options);
}

}  // namespace vp::core
