// BENCH_comparison.json schema ("voiceprint.comparison_bench/v1"): the
// bench/sec6_complexity sweep writes one document comparing the exact
// pairwise sweep against the lower-bound cascade (compare_series_pruned)
// over a range of neighbour counts — wall time for both paths, the
// resulting speedups, and the cascade's exit-tier tally.
//
// Like stream/report.h, build and validate live together so the emitted
// document and the check (tools/check_run_report --comparison-bench, the
// smoke test, and the unit tests) cannot drift apart. The validator
// enforces the cascade conservation law
//   pairs_comparable = lb_kim_pruned + lb_keogh_pruned + early_abandoned
//                      + full_sweeps
// and that the bench's exact-vs-pruned verdict cross-check passed.
#pragma once

#include <string>
#include <vector>

#include "core/comparison.h"
#include "obs/json.h"

namespace vp::core {

// One sweep configuration's results.
struct ComparisonBenchResult {
  std::string label;          // e.g. "n80"
  std::size_t identities = 0;
  std::size_t pairs = 0;      // enumerated (i < j) pairs
  std::size_t pairs_comparable = 0;
  double exact_serial_ns = 0.0;    // exact sweep, threads = 1
  double pruned_serial_ns = 0.0;   // cascade, threads = 1
  double exact_parallel_ns = 0.0;  // exact sweep, threads = 0 (all cores)
  double pruned_parallel_ns = 0.0; // cascade, threads = 0
  double speedup_serial = 0.0;     // exact_serial_ns / pruned_serial_ns
  double speedup_parallel = 0.0;
  CascadeStats cascade;            // exit-tier tally of the pruned sweep
  bool verdicts_match = false;     // exact vs pruned flagged-pair parity
};

// Builds the voiceprint.comparison_bench/v1 document. `simd_backend` is
// ts::simd_backend_name(); `simd_enabled` records whether the bench let the
// cascade use the vector kernel.
obs::json::Value build_comparison_bench_report(
    const std::string& binary, const std::string& simd_backend,
    bool simd_enabled, const std::vector<ComparisonBenchResult>& configs);

// True when `report` conforms to voiceprint.comparison_bench/v1 (including
// the conservation law and verdict parity). On failure, `error` (if
// non-null) receives a one-line description.
bool validate_comparison_bench(const obs::json::Value& report,
                               std::string* error);

}  // namespace vp::core
