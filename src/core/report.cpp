#include "core/report.h"

#include <utility>

#include "common/thread_pool.h"

namespace vp::core {

namespace {

using obs::json::Array;
using obs::json::Object;
using obs::json::Value;

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool require_number(const Value& object, const char* key,
                    const std::string& where, std::string* error) {
  const Value* v = object.find(key);
  if (v == nullptr || !v->is_number()) {
    return fail(error, where + ": missing or non-numeric \"" + key + "\"");
  }
  return true;
}

}  // namespace

Value build_comparison_bench_report(
    const std::string& binary, const std::string& simd_backend,
    bool simd_enabled, const std::vector<ComparisonBenchResult>& configs) {
  Object doc;
  doc.emplace("schema", Value("voiceprint.comparison_bench/v1"));
  doc.emplace("binary", Value(binary));
  doc.emplace("hardware_threads", Value(hardware_threads()));
  doc.emplace("simd_backend", Value(simd_backend));
  doc.emplace("simd_enabled", Value(simd_enabled));
  Array rows;
  for (const ComparisonBenchResult& c : configs) {
    Object row;
    row.emplace("label", Value(c.label));
    row.emplace("identities", Value(c.identities));
    row.emplace("pairs", Value(c.pairs));
    row.emplace("pairs_comparable", Value(c.pairs_comparable));
    row.emplace("exact_serial_ns", Value(c.exact_serial_ns));
    row.emplace("pruned_serial_ns", Value(c.pruned_serial_ns));
    row.emplace("exact_parallel_ns", Value(c.exact_parallel_ns));
    row.emplace("pruned_parallel_ns", Value(c.pruned_parallel_ns));
    row.emplace("speedup_serial", Value(c.speedup_serial));
    row.emplace("speedup_parallel", Value(c.speedup_parallel));
    row.emplace("lb_kim_pruned", Value(c.cascade.lb_kim_pruned));
    row.emplace("lb_keogh_pruned", Value(c.cascade.lb_keogh_pruned));
    row.emplace("fixed_pruned", Value(c.cascade.fixed_pruned));
    row.emplace("early_abandoned", Value(c.cascade.early_abandoned));
    row.emplace("full_sweeps", Value(c.cascade.full_sweeps));
    row.emplace("verdicts_match", Value(c.verdicts_match));
    rows.push_back(Value(std::move(row)));
  }
  doc.emplace("configs", Value(std::move(rows)));
  return Value(std::move(doc));
}

bool validate_comparison_bench(const Value& report, std::string* error) {
  if (!report.is_object()) return fail(error, "report is not an object");
  const Value* schema = report.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "voiceprint.comparison_bench/v1") {
    return fail(error, "schema is not \"voiceprint.comparison_bench/v1\"");
  }
  const Value* binary = report.find("binary");
  if (binary == nullptr || !binary->is_string()) {
    return fail(error, "missing or non-string \"binary\"");
  }
  if (!require_number(report, "hardware_threads", "report", error)) {
    return false;
  }
  const Value* backend = report.find("simd_backend");
  if (backend == nullptr || !backend->is_string() ||
      (backend->as_string() != "avx2" && backend->as_string() != "neon" &&
       backend->as_string() != "scalar")) {
    return fail(error,
                "\"simd_backend\" is not one of avx2 / neon / scalar");
  }
  const Value* simd_enabled = report.find("simd_enabled");
  if (simd_enabled == nullptr || !simd_enabled->is_bool()) {
    return fail(error, "missing or non-bool \"simd_enabled\"");
  }
  const Value* configs = report.find("configs");
  if (configs == nullptr || !configs->is_array()) {
    return fail(error, "missing or non-array \"configs\"");
  }
  if (configs->as_array().empty()) return fail(error, "\"configs\" is empty");
  std::size_t index = 0;
  for (const Value& row : configs->as_array()) {
    const std::string where = "configs[" + std::to_string(index++) + "]";
    if (!row.is_object()) return fail(error, where + " is not an object");
    const Value* label = row.find("label");
    if (label == nullptr || !label->is_string()) {
      return fail(error, where + ": missing or non-string \"label\"");
    }
    for (const char* key :
         {"identities", "pairs", "pairs_comparable", "exact_serial_ns",
          "pruned_serial_ns", "exact_parallel_ns", "pruned_parallel_ns",
          "speedup_serial", "speedup_parallel", "lb_kim_pruned",
          "lb_keogh_pruned", "fixed_pruned", "early_abandoned",
          "full_sweeps"}) {
      if (!require_number(row, key, where, error)) return false;
    }
    // Conservation law of the cascade: every comparable pair exits at
    // exactly one tier — a bench whose tally loses or double-counts pairs
    // is rejected here, not discovered in a dashboard.
    if (row.find("pairs_comparable")->as_number() !=
        row.find("lb_kim_pruned")->as_number() +
            row.find("lb_keogh_pruned")->as_number() +
            row.find("fixed_pruned")->as_number() +
            row.find("early_abandoned")->as_number() +
            row.find("full_sweeps")->as_number()) {
      return fail(error,
                  where +
                      ": pairs_comparable != lb_kim_pruned + lb_keogh_pruned"
                      " + fixed_pruned + early_abandoned + full_sweeps");
    }
    const Value* verdicts = row.find("verdicts_match");
    if (verdicts == nullptr || !verdicts->is_bool()) {
      return fail(error, where + ": missing or non-bool \"verdicts_match\"");
    }
    // The cascade's whole contract is verdict identity; a bench artefact
    // recording a mismatch must never validate.
    if (!verdicts->as_bool()) {
      return fail(error, where + ": verdicts_match is false");
    }
  }
  return true;
}

}  // namespace vp::core
