#include "core/detector.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.h"
#include "obs/runtime.h"
#include "obs/timer.h"

namespace vp::core {

VoiceprintOptions tuned_simulation_options(std::size_t threads) {
  VoiceprintOptions options;
  options.boundary = {.k = 0.0, .b = 0.0125};
  options.min_pair_votes = 2;
  options.comparison.threads = threads;
  return options;
}

VoiceprintOptions with_run_flags(VoiceprintOptions options,
                                 const RunFlags& flags) {
  options.comparison.exact_mode = !flags.prune;
  options.comparison.use_simd = flags.simd;
  options.comparison.fixed_lower_bound = flags.fixed_lb;
  return options;
}

VoiceprintDetector::VoiceprintDetector(VoiceprintOptions options)
    : options_(options) {}

std::vector<IdentityId> VoiceprintDetector::detect_series(
    std::span<const NamedSeries> series, double density_per_km) {
  const bool instrumented = obs::enabled();
  obs::ScopedTimer total_timer =
      instrumented
          ? obs::ScopedTimer(&obs::registry().histogram("detect.total_ns"),
                             obs::trace(), {.phase = "detect"})
          : obs::ScopedTimer();

  // The decision threshold only depends on the density, so it is known
  // before any distance is measured — which is exactly what lets the pruned
  // sweep classify pairs from bounds without computing their distances.
  const double density =
      options_.fixed_density_per_km.value_or(density_per_km);
  last_threshold_ = options_.boundary.threshold_at(density);

  if (options_.comparison.exact_mode) {
    last_all_ = compare_series(series, options_.comparison);
    for (PairDistance& pair : last_all_) {
      pair.flagged = pair.comparable &&
                     options_.boundary.is_sybil(density, pair.normalized);
    }
  } else {
    last_all_ = compare_series_pruned(series, options_.comparison,
                                      last_threshold_);
  }
  last_flagged_.clear();

  // Threshold-and-vote is the per-period decision step that the paper's
  // multi-period confirmation (Section VI) builds on.
  obs::ScopedTimer confirm_timer =
      instrumented
          ? obs::ScopedTimer(
                &obs::registry().histogram("detect.confirmation_ns"),
                obs::trace(),
                {.phase = "detect.confirmation",
                 .pairs = static_cast<std::int64_t>(last_all_.size())})
          : obs::ScopedTimer();

  std::map<IdentityId, std::size_t> votes;
  for (const PairDistance& pair : last_all_) {
    if (!pair.comparable || !pair.flagged) continue;
    last_flagged_.push_back(pair);
    ++votes[pair.a];
    ++votes[pair.b];
  }
  // With only two identities in earshot no clique evidence can exist; fall
  // back to Algorithm 1's single-pair rule.
  const std::size_t required =
      series.size() >= 3 ? std::max<std::size_t>(options_.min_pair_votes, 1)
                         : 1;
  std::set<IdentityId> suspects;
  for (const auto& [id, count] : votes) {
    if (count >= required) suspects.insert(id);
  }
  confirm_timer.stop();

  if (instrumented) {
    obs::MetricsRegistry& registry = obs::registry();
    registry.counter("detect.calls").add(1);
    registry.counter("detect.pairs_flagged").add(last_flagged_.size());
    registry.counter("detect.suspects_flagged").add(suspects.size());
    registry
        .histogram("detect.suspects_per_call",
                   obs::Histogram::default_count_bounds())
        .record(static_cast<double>(suspects.size()));
  }
  return {suspects.begin(), suspects.end()};
}

std::vector<IdentityId> VoiceprintDetector::detect_window(
    const sim::ObservationWindow& window) {
  std::vector<NamedSeries> series;
  series.reserve(window.neighbors.size());
  for (const sim::NeighborObservation& n : window.neighbors) {
    series.emplace_back(n.id, n.rssi);
  }
  return detect_series(series, window.estimated_density_per_km);
}

std::vector<IdentityId> VoiceprintDetector::detect(
    const sim::ObservationWindow& window, const sim::World& /*world*/) {
  return detect_window(window);
}

}  // namespace vp::core
