// The Voiceprint detector — Algorithm 1 of the paper, end to end:
// Z-score the RSSI series heard in the observation window, measure all
// pairwise FastDTW distances, min–max normalise them, and flag every pair
// whose distance falls at or under the density-dependent threshold
// k·den + b. The union of flagged pairs' identities is the suspect set.
//
// Voiceprint is *independent* (uses only the local observation window) and
// *model-free* (never evaluates a propagation model).
#pragma once

#include <optional>

#include "common/cli.h"
#include "core/comparison.h"
#include "ml/linear_boundary.h"
#include "sim/detector.h"

namespace vp::core {

struct VoiceprintOptions {
  ml::LinearBoundary boundary{.k = 0.00054, .b = 0.0483};  // Fig. 10 values
  ComparisonOptions comparison{};
  // When set, overrides the window's density estimate (the field test uses
  // a constant 4 vhls/km for its four-vehicle fleet).
  std::optional<double> fixed_density_per_km;
  // How many flagged pairs an identity must appear in before it becomes a
  // suspect. Algorithm 1 uses 1 (any flagged pair condemns both ends). A
  // Sybil group of n+1 identities forms a clique of similar pairs, so each
  // member collects n votes, while a normal vehicle that merely platoons
  // with one neighbour collects a single coincidental vote — requiring 2
  // suppresses exactly that false positive class. Only meaningful when at
  // least 3 identities are heard; with fewer, 1 is used.
  std::size_t min_pair_votes = 1;
};

// Options tuned on THIS repository's simulator via the Fig. 10 pipeline
// (collect_labeled_windows + tune_boundary over densities 15/45/75, FPR
// budget 5%) — the analogue of the paper's trained (k = 0.00054,
// b = 0.0483) on its NS-2 setup. Use these for simulation experiments;
// retrain with bench/fig10_lda_training when the scenario changes.
// `threads` feeds ComparisonOptions::threads (the pairwise FastDTW sweep;
// 1 = serial, 0 = all hardware threads) and never changes the results.
VoiceprintOptions tuned_simulation_options(std::size_t threads = 1);

// Applies the shared --prune/--simd/--fixedlb run flags (common/cli.h) to
// an option set: --prune routes detection through the lower-bound cascade
// (compare_series_pruned; verdicts identical to the exact sweep), --simd
// selects the vectorised band-sweep kernel, --fixedlb arms the int16
// integer-DTW tier inside that cascade. Every driver that exposes the
// flags funnels them through here so the mapping stays in one place.
VoiceprintOptions with_run_flags(VoiceprintOptions options,
                                 const RunFlags& flags);

class VoiceprintDetector final : public sim::Detector {
 public:
  explicit VoiceprintDetector(VoiceprintOptions options = {});

  // Pure, simulation-independent form of Algorithm 1: series in, suspect
  // identities out. Also records the per-pair distances retrievable via
  // last_all_pairs()/last_flagged_pairs().
  std::vector<IdentityId> detect_series(std::span<const NamedSeries> series,
                                        double density_per_km);

  // Convenience overload for an observation window (density from Eq. 9
  // unless overridden by options).
  std::vector<IdentityId> detect_window(const sim::ObservationWindow& window);

  // sim::Detector interface; `world` is deliberately unused (independent
  // detection).
  std::vector<IdentityId> detect(const sim::ObservationWindow& window,
                                 const sim::World& world) override;

  std::string_view name() const override { return "Voiceprint"; }
  const VoiceprintOptions& options() const { return options_; }

  // Diagnostics from the last detect_* call; the field-test harness plots
  // these per-pair distances against the threshold (Fig. 13).
  const std::vector<PairDistance>& last_flagged_pairs() const {
    return last_flagged_;
  }
  const std::vector<PairDistance>& last_all_pairs() const {
    return last_all_;
  }
  double last_threshold() const { return last_threshold_; }

 private:
  VoiceprintOptions options_;
  std::vector<PairDistance> last_flagged_;
  std::vector<PairDistance> last_all_;
  double last_threshold_ = 0.0;
};

}  // namespace vp::core
