// Voiceprint's comparison phase (Section IV-C-2):
//   1. per-series enhanced Z-score normalisation (Eq. 7), which erases the
//      constant dBm offset a power-spoofing attacker adds per identity;
//   2. pairwise FastDTW distance between every two heard series;
//   3. min–max normalisation of the distance set into [0, 1] (Eq. 8).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "sim/observation.h"
#include "timeseries/fast_dtw.h"
#include "timeseries/series.h"

namespace vp::core {

struct PairDistance {
  IdentityId a = kInvalidIdentity;
  IdentityId b = kInvalidIdentity;
  double normalized = 0.0;  // after Eq. 8, in [0, 1]
  double raw = 0.0;         // DTW distance before Eq. 8
  // False when the two series share too little time support to be judged
  // (identities of one radio always interleave in time, so such a pair is
  // conservatively treated as non-Sybil: normalized is pinned to 1).
  bool comparable = true;
  // Threshold verdict (normalized <= decision threshold). Filled by
  // compare_series_pruned; the exact path leaves it to the detector, which
  // stamps it after applying the density-dependent boundary. For a pair
  // the cascade classified from bounds alone, `flagged` is exact (provably
  // identical to the full computation) while `raw`/`normalized` hold the
  // proving bound, not the exact distance — see compare_series_pruned.
  bool flagged = false;
};

enum class DistanceKind {
  kFastDtw,    // the paper's choice
  kExactDtw,   // O(N²) reference
  kEuclidean,  // point-to-point; series are length-matched by resampling
};

struct ComparisonOptions {
  DistanceKind distance = DistanceKind::kFastDtw;
  std::size_t fastdtw_radius = 1;
  // Sakoe–Chiba half-width in samples (0 = unconstrained). Beacon series
  // are time-synchronised — the environment changes hit every identity of
  // a radio at the same instant — so alignment only needs to absorb packet
  // loss and timing jitter. Unconstrained warping lets the monotone
  // "drive-past" ramps of two different vehicles align level-by-level and
  // erases their shadowing differences.
  std::size_t dtw_band = 2;
  // How the two series are brought onto comparable index spaces before DTW.
  enum class Alignment {
    // Keep only samples whose timestamps match within match_gap_s (greedy
    // nearest-neighbour pairing). Packet loss deletes *different* samples
    // from the two series; interpolating through a lost-packet gap smears
    // ~2 dB of shadowing drift into the series and buries the Sybil
    // similarity, while matched real samples of a Sybil pair sit
    // milliseconds apart on the SAME shadowing process (the radio bursts
    // its identities back-to-back) and differ by pure measurement noise.
    kMatchedSamples,
    // Linear interpolation of both series onto a uniform grid (ablation).
    kResampleGrid,
    // Use the raw index spaces (the literal Eq. 3-6 reading; ablation).
    kNone,
  };
  Alignment alignment = Alignment::kMatchedSamples;
  double match_gap_s = 0.06;   // half the 10 Hz period plus MAC jitter
  double grid_period_s = 0.1;  // the 10 Hz beacon period (kResampleGrid)
  ts::LocalCost cost = ts::LocalCost::kSquared;
  // Disabling these is only meant for the normalisation ablation.
  bool z_score_normalize = true;
  bool min_max_normalize = true;
  // Eq. 8 needs a population of distances to calibrate against: with very
  // few comparable pairs it degenerates (a lone pair always maps to 0 and
  // would be flagged at any threshold). Below this pair count the raw
  // per-step distances — which live on a stable scale thanks to the
  // length normalisation — are used directly.
  std::size_t min_pairs_for_min_max = 6;
  // Divide each DTW distance by its warp-path length (per-step cost).
  // Eq. 6's raw accumulated cost grows with series length, so under packet
  // loss a pair of short series always looks "similar" and floods Eq. 8's
  // min–max scale; per-step costs are length-comparable. With equal-length
  // series this is a monotone rescaling and equivalent to the paper.
  bool length_normalize = true;
  // Series with no usable *shape* are excluded from comparison: a link
  // pinned at the receiver sensitivity floor (the paper's far node whose
  // trace sits at −95 dBm, Section VI-B) or with near-zero variance carries
  // no voiceprint, and after Z-scoring any two such series look identical —
  // precisely the mechanism behind the paper's single field-test false
  // positive. Set min_series_stddev_db to 0 to disable.
  double min_series_stddev_db = 1.5;
  double sensitivity_floor_dbm = -95.0;
  double max_floor_fraction = 0.25;
  // Pairs are compared on their COMMON time support only. DTW aligns
  // values, not timestamps: without this, the monotone ramp a vehicle
  // leaves while receding at t∈[0,9] warps perfectly onto the ramp another
  // vehicle produces arriving at t∈[11,20]. Two identities of one radio
  // always share time support, so a pair overlapping less than this is
  // declared incomparable (treated as non-Sybil).
  double min_overlap_s = 5.0;
  std::size_t min_overlap_samples = 10;
  // Worker threads for the pairwise sweep (the hot path: a confirmation
  // round over 80 neighbours is 3160 FastDTW calls). 1 = serial on the
  // calling thread; 0 = all hardware threads. Each worker owns one
  // ts::DtwWorkspace and the (i,j) pairs are enumerated up front and
  // written into pre-sized slots, so the output — and therefore Eq. 8
  // min–max normalisation and everything downstream — is bit-identical
  // for every thread count.
  std::size_t threads = 1;
  // True (the default, and what every test pins) runs the reference path:
  // every pair pays its full (Fast)DTW solve. False lets the detector use
  // compare_series_pruned — the UCR-style lower-bound cascade — which is
  // guaranteed verdict-identical but reports bound values instead of exact
  // distances for the pairs it prunes. Flipped by the drivers' --prune.
  bool exact_mode = true;
  // Use the vectorised wavefront kernel for surviving band sweeps when the
  // build has a vector backend (timeseries/simd.h). The scalar sweep is
  // bit-identical; this flag only trades speed, never results. Flipped by
  // the drivers' --simd.
  bool use_simd = true;
  // Insert the int16 Q4.12 quantised banded-DTW tier (timeseries/fixed.h,
  // DESIGN.md §15) between the envelope bounds and the float kernel in
  // compare_series_pruned: when the certified integer bound already
  // clears the discard threshold the float kernel never runs. Like the
  // rest of the cascade this is verdict-identical by construction — the
  // deflated bound is a true lower bound — so the flag only trades work.
  // No effect in exact_mode. Flipped by the drivers' --fixedlb.
  bool fixed_lower_bound = false;
};

// Per-sweep exit-tier tally of the lower-bound cascade. Every comparable
// pair exits at exactly one tier, so
//   comparable pairs = lb_kim_pruned + lb_keogh_pruned + fixed_pruned
//                      + early_abandoned + full_sweeps
// (the conservation law check_run_report enforces on BENCH_comparison.json).
// The same tallies are also accumulated on the obs registry counters
// dtw.lb_kim_pruned / dtw.lb_keogh_pruned / dtw.fixed_pruned /
// dtw.early_abandoned / dtw.full_sweeps.
struct CascadeStats {
  std::uint64_t lb_kim_pruned = 0;   // decided from the Phase-A sketch
                                     // bounds alone (LB_Kim + diagonal UB)
  std::uint64_t lb_keogh_pruned = 0; // needed the Sakoe–Chiba envelopes
  std::uint64_t fixed_pruned = 0;    // decided by the int16 Q4.12 integer
                                     // DTW bound (fixed_lower_bound only)
  std::uint64_t early_abandoned = 0; // entered the DTW recurrence but the
                                     // banded bound pruned it before a
                                     // full solve (abandoned or completed)
  std::uint64_t full_sweeps = 0;     // paid the exact distance
};

using NamedSeries = std::pair<IdentityId, ts::Series>;

// Pairwise distances over all series (i < j ordering, as in Algorithm 1
// lines 4–10). Series shorter than 2 samples are skipped. With fewer than
// two usable series the result is empty.
std::vector<PairDistance> compare_series(std::span<const NamedSeries> series,
                                         const ComparisonOptions& options = {});

// The pruned comparison sweep (ISSUE 6 tentpole). Same pair enumeration
// and comparability rules as compare_series, but each pair runs the
// cascade LB_Kim → LB_Keogh → early-abandoning banded DTW and exits at the
// cheapest tier that already proves which side of `decision_threshold` its
// Eq. 8-normalised distance falls on. Contract, for every thread count:
//
//   * `comparable` and `flagged` are bit-identical to what the exact path
//     plus `normalized <= decision_threshold` would produce. Eq. 8's
//     population min/max are located EXACTLY (best-so-far searches that
//     only skip pairs provably unable to move an extreme), and pruning
//     decisions compare slack-padded bounds through the same monotone
//     floating-point transform the exact path applies, so no rounding
//     difference can flip a verdict.
//   * pairs the cascade had to resolve exactly also carry bit-identical
//     `raw` and `normalized`; pruned pairs carry the proving bound in
//     those fields instead (documented diagnostics-only).
//
// Falls back to the exact sweep (tallying every comparable pair as a full
// sweep) for option combinations outside the cascade's reach: Euclidean
// distance, kNone alignment (unequal lengths), disabled Z-scoring, or
// FastDTW with an unconstrained band (no admissible-diagonal upper bound).
std::vector<PairDistance> compare_series_pruned(
    std::span<const NamedSeries> series, const ComparisonOptions& options,
    double decision_threshold, CascadeStats* stats = nullptr);

// Convenience: runs compare_series on a simulation observation window.
std::vector<PairDistance> compare_window(const sim::ObservationWindow& window,
                                         const ComparisonOptions& options = {});

// Greedy nearest-neighbour pairing of two time-sorted series: for each
// sample of `a`, the closest unused sample of `b` within `max_gap_s`. The
// matched values come out time-ordered and equal-length. Exposed for tests
// and custom alignment pipelines.
void match_samples(const ts::Series& a, const ts::Series& b, double max_gap_s,
                   std::vector<double>& out_a, std::vector<double>& out_b);

}  // namespace vp::core
