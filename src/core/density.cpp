#include "core/density.h"

#include "common/error.h"

namespace vp::core {

double estimate_density_per_km(std::size_t heard_count,
                               double max_transmission_range_m) {
  VP_REQUIRE(max_transmission_range_m > 0.0);
  const double dist_max_km = max_transmission_range_m / 1000.0;
  return static_cast<double>(heard_count) / (2.0 * dist_max_km);
}

double estimate_density_per_km(const std::vector<IdentityId>& heard,
                               const std::set<IdentityId>& known_sybils,
                               double max_transmission_range_m) {
  std::size_t count = 0;
  for (IdentityId id : heard) {
    if (known_sybils.count(id) == 0) ++count;
  }
  return estimate_density_per_km(count, max_transmission_range_m);
}

}  // namespace vp::core
