#include "core/confirmation.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace vp::core {

ConfirmationFilter::ConfirmationFilter(std::size_t required,
                                       std::size_t window)
    : required_(required), window_(window) {
  VP_REQUIRE(required >= 1);
  VP_REQUIRE(required <= window);
}

std::vector<IdentityId> ConfirmationFilter::update(
    NodeId observer, const std::vector<IdentityId>& heard,
    const std::vector<IdentityId>& flagged) {
  const std::set<IdentityId> flagged_set(flagged.begin(), flagged.end());
  auto& histories = state_[observer];
  for (IdentityId id : heard) {
    History& h = histories[id];
    const bool positive = flagged_set.count(id) != 0;
    h.verdicts.push_back(positive);
    if (positive) ++h.positives;
    if (h.verdicts.size() > window_) {
      if (h.verdicts.front()) --h.positives;
      h.verdicts.pop_front();
    }
  }
  return confirmed(observer);
}

std::vector<IdentityId> ConfirmationFilter::confirmed(NodeId observer) const {
  std::vector<IdentityId> out;
  const auto it = state_.find(observer);
  if (it == state_.end()) return out;
  for (const auto& [id, history] : it->second) {
    if (history.positives >= required_) out.push_back(id);
  }
  return out;
}

void ConfirmationFilter::reset() { state_.clear(); }

}  // namespace vp::core
