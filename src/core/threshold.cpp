#include "core/threshold.h"

#include "common/error.h"
#include "sim/runner.h"
#include <set>

namespace vp::core {

ml::LinearBoundary paper_boundary() { return {.k = 0.00054, .b = 0.0483}; }

ml::LinearBoundary constant_boundary(double threshold) {
  VP_REQUIRE(threshold >= 0.0);
  return {.k = 0.0, .b = threshold};
}

void collect_training_points(const sim::World& world,
                             const TrainingOptions& options,
                             ml::Dataset& out) {
  sim::EvaluationOptions eval;
  eval.max_observers = options.max_observers;
  eval.min_samples = options.min_samples;
  eval.sampling_seed = options.sampling_seed;
  const std::vector<NodeId> observers = sim::sample_observers(world, eval);

  for (double t : world.detection_times()) {
    for (NodeId observer : observers) {
      const sim::ObservationWindow window =
          world.observe(observer, t, options.min_samples);
      if (window.neighbors.size() < 2) continue;
      for (const PairDistance& pair :
           compare_window(window, options.comparison)) {
        // Incomparable pairs carry no distance evidence — training on
        // their pinned sentinel value would only distort the classes.
        if (!pair.comparable) continue;
        if (!world.truth().known(pair.a) || !world.truth().known(pair.b)) {
          continue;
        }
        out.push_back({.density = window.estimated_density_per_km,
                       .distance = pair.normalized,
                       .sybil_pair = world.truth().same_radio(pair.a, pair.b)});
      }
    }
  }
}

ml::LinearBoundary train_boundary(const ml::Dataset& data, double p_sybil) {
  return ml::Lda::fit(data, p_sybil).boundary;
}

void collect_labeled_windows(const sim::World& world,
                             const TrainingOptions& options,
                             std::vector<LabeledWindow>& out) {
  sim::EvaluationOptions eval;
  eval.max_observers = options.max_observers;
  eval.min_samples = options.min_samples;
  eval.sampling_seed = options.sampling_seed;
  const std::vector<NodeId> observers = sim::sample_observers(world, eval);

  for (double t : world.detection_times()) {
    for (NodeId observer : observers) {
      const sim::ObservationWindow window =
          world.observe(observer, t, options.min_samples);
      if (window.neighbors.size() < 2) continue;
      LabeledWindow labeled;
      labeled.density = window.estimated_density_per_km;
      for (const sim::NeighborObservation& n : window.neighbors) {
        if (!world.truth().known(n.id)) continue;
        labeled.identities.emplace_back(n.id,
                                        world.truth().is_illegitimate(n.id));
      }
      for (const PairDistance& pair :
           compare_window(window, options.comparison)) {
        if (!world.truth().known(pair.a) || !world.truth().known(pair.b)) {
          continue;
        }
        labeled.pairs.push_back(
            {.a = pair.a,
             .b = pair.b,
             .distance = pair.normalized,
             .comparable = pair.comparable,
             .sybil_pair = world.truth().same_radio(pair.a, pair.b)});
      }
      out.push_back(std::move(labeled));
    }
  }
}

TunedBoundary evaluate_boundary(const ml::LinearBoundary& boundary,
                                std::span<const LabeledWindow> windows,
                                std::size_t votes) {
  VP_REQUIRE(!windows.empty());
  VP_REQUIRE(votes >= 1);
  double dr_sum = 0.0, fpr_sum = 0.0;
  std::size_t dr_n = 0, fpr_n = 0;
  std::map<IdentityId, std::size_t> tally;
  for (const LabeledWindow& window : windows) {
    tally.clear();
    const double threshold = boundary.threshold_at(window.density);
    for (const LabeledWindow::Pair& pair : window.pairs) {
      if (!pair.comparable || pair.distance > threshold) continue;
      ++tally[pair.a];
      ++tally[pair.b];
    }
    const std::size_t required = window.identities.size() >= 3 ? votes : 1;
    std::size_t tp = 0, fp = 0, pos = 0, neg = 0;
    for (const auto& [id, illegitimate] : window.identities) {
      const auto it = tally.find(id);
      const bool hit = it != tally.end() && it->second >= required;
      if (illegitimate) {
        ++pos;
        tp += hit ? 1 : 0;
      } else {
        ++neg;
        fp += hit ? 1 : 0;
      }
    }
    if (pos > 0) {
      dr_sum += static_cast<double>(tp) / static_cast<double>(pos);
      ++dr_n;
    }
    if (neg > 0) {
      fpr_sum += static_cast<double>(fp) / static_cast<double>(neg);
      ++fpr_n;
    }
  }
  TunedBoundary result;
  result.boundary = boundary;
  result.votes = votes;
  result.train_dr = dr_n == 0 ? 0.0 : dr_sum / static_cast<double>(dr_n);
  result.train_fpr = fpr_n == 0 ? 0.0 : fpr_sum / static_cast<double>(fpr_n);
  return result;
}

TunedBoundary tune_boundary(std::span<const LabeledWindow> windows,
                            const BoundaryTuning& tuning) {
  VP_REQUIRE(!windows.empty());
  VP_REQUIRE(tuning.b_steps >= 2);
  VP_REQUIRE(tuning.b_max > tuning.b_min);
  VP_REQUIRE(!tuning.k_grid.empty());

  bool have_feasible = false;
  TunedBoundary best;       // best DR within the FPR budget
  TunedBoundary fallback;   // lowest FPR overall
  double fallback_fpr = 2.0;

  VP_REQUIRE(!tuning.vote_grid.empty());
  for (std::size_t votes : tuning.vote_grid) {
    for (double k : tuning.k_grid) {
      for (std::size_t step = 0; step < tuning.b_steps; ++step) {
        const double b =
            tuning.b_min + (tuning.b_max - tuning.b_min) *
                               static_cast<double>(step) /
                               static_cast<double>(tuning.b_steps - 1);
        const TunedBoundary candidate =
            evaluate_boundary({.k = k, .b = b}, windows, votes);
        if (candidate.train_fpr <= tuning.fpr_budget) {
          if (!have_feasible || candidate.train_dr > best.train_dr ||
              (candidate.train_dr == best.train_dr &&
               candidate.train_fpr < best.train_fpr)) {
            best = candidate;
            have_feasible = true;
          }
        }
        if (candidate.train_fpr < fallback_fpr) {
          fallback_fpr = candidate.train_fpr;
          fallback = candidate;
        }
      }
    }
  }
  return have_feasible ? best : fallback;
}

}  // namespace vp::core
