// Threshold determination (Section IV-C-3 and Fig. 10): the detection
// threshold is a *function of density*, learned as a linear decision
// boundary in the density–DTW-distance plane. This module collects labelled
// training points from finished simulations and fits the boundary with LDA
// (the paper's choice; the ablation bench swaps in the alternatives).
#pragma once

#include "core/comparison.h"
#include "ml/dataset.h"
#include "ml/lda.h"
#include "ml/linear_boundary.h"
#include "sim/world.h"

namespace vp::core {

// The boundary the paper reports after training on its own simulation data
// (k = 0.00054, b = 0.0483). Useful as a documented default; retrain with
// train_boundary() for best results on this simulator.
ml::LinearBoundary paper_boundary();

// A constant threshold (k = 0), as used in the paper's four-vehicle field
// test where density barely changes (Section VI-A uses 0.05046).
ml::LinearBoundary constant_boundary(double threshold);

struct TrainingOptions {
  std::size_t max_observers = 16;
  std::size_t min_samples = 20;
  std::uint64_t sampling_seed = 7;
  ComparisonOptions comparison{};
};

// Runs the comparison phase for every sampled observer and detection
// period of a finished world and labels each pair with ground truth
// ("same physical radio" = Sybil pair). Appends to `out`.
void collect_training_points(const sim::World& world,
                             const TrainingOptions& options,
                             ml::Dataset& out);

// Fits the LDA boundary on the collected points. `p_sybil` sets the
// Sybil prior odds: smaller values pull the boundary toward the Sybil
// cluster (fewer false positives, lower detection rate). 0.1 lands the
// boundary in the gap between the Sybil cluster's upper tail and the
// normal cloud's lower tail on this simulator's data.
ml::LinearBoundary train_boundary(const ml::Dataset& data,
                                  double p_sybil = 0.1);

// ---------------------------------------------------------------------------
// Identity-level boundary tuning.
//
// LDA (and any per-pair classifier) optimises PAIR error rates, but
// Algorithm 1 unions every flagged pair's endpoints into the suspect set:
// one normal identity participates in dozens of pairs, so a per-pair false
// positive rate of even 5% multiplies into an identity-level FPR of >50%.
// The tuner below therefore scores candidate lines by the metrics the
// paper actually reports (Eq. 10–13, per identity) and picks the highest
// detection rate subject to an FPR budget — the Neyman–Pearson reading of
// the paper's "find the optimal decision boundary".

struct LabeledWindow {
  double density = 0.0;  // Eq. 9 estimate of the observer
  struct Pair {
    IdentityId a = kInvalidIdentity;
    IdentityId b = kInvalidIdentity;
    double distance = 0.0;  // normalised
    bool comparable = true;
    bool sybil_pair = false;  // ground truth (not visible to the detector)
  };
  std::vector<Pair> pairs;
  // Every identity heard in the window with its ground-truth label.
  std::vector<std::pair<IdentityId, bool>> identities;  // (id, illegitimate)
};

// Extracts labelled windows (pair distances + identity labels) from a
// finished world; appends to `out`.
void collect_labeled_windows(const sim::World& world,
                             const TrainingOptions& options,
                             std::vector<LabeledWindow>& out);

struct BoundaryTuning {
  double fpr_budget = 0.05;  // identity-level, averaged over windows
  std::vector<double> k_grid = {0.0, 0.00025, 0.0005, 0.001};
  double b_min = 0.0;
  double b_max = 0.15;
  std::size_t b_steps = 61;
  // Pair-vote requirements to consider (VoiceprintOptions::min_pair_votes).
  std::vector<std::size_t> vote_grid = {1, 2};
};

struct TunedBoundary {
  ml::LinearBoundary boundary;
  std::size_t votes = 1;   // tuned min_pair_votes
  double train_dr = 0.0;   // identity-level averages on the training windows
  double train_fpr = 0.0;
};

// Evaluates one candidate boundary on labelled windows (identity-level
// Eq. 12/13 averages) under the given pair-vote requirement.
TunedBoundary evaluate_boundary(const ml::LinearBoundary& boundary,
                                std::span<const LabeledWindow> windows,
                                std::size_t votes = 1);

// Grid-searches (k, b), returning the feasible candidate with the highest
// detection rate (falling back to the lowest-FPR candidate if none meets
// the budget). Requires at least one window.
TunedBoundary tune_boundary(std::span<const LabeledWindow> windows,
                            const BoundaryTuning& tuning = {});

}  // namespace vp::core
